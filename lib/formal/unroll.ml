(** Bounded unrolling of a low-form circuit into CNF.

    Every signal of every cycle becomes a vector of SAT literals; registers
    and memory words start at zero (the simulators' power-on state) and
    step through [reset ? init : driver] transitions, so a satisfying model
    corresponds exactly to a software-simulation run — BMC traces replay
    cycle-for-cycle on the interpreter, which the test suite exercises. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Prep = Sic_sim.Backend.Prep

exception Formal_error of string

type cycle_env = {
  values : (string, Gate.bits) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
}

type t = {
  ctx : Gate.ctx;
  p : Prep.prepared;
  bound : int;
  input_bits : (string * Gate.bits array) list;  (** per input: bits per cycle *)
  cover_lits : (string * int array) list;  (** per cover: literal per cycle *)
}

(** Unroll [bound] cycles. With [~free_init:true] the initial state
    (registers, memory words, sync-read latches) consists of fresh
    variables instead of the power-on zeros — the arbitrary-state
    unrolling used by the inductive step of {!Bmc.prove_unreachable}. *)
let unroll ?(reset_cycles = 1) ?(free_init = false) (circuit : Circuit.t) ~bound : t =
  let p = Prep.prepare circuit in
  let ty_of = Circuit.lookup_of p.Prep.env in
  let solver = Sat.create () in
  let ctx = Gate.create solver in
  let init_bits w = if free_init then Gate.fresh_bits ctx w else Gate.zero_bits ctx w in
  (* allocate input variables for all cycles; constrain reset *)
  let input_bits =
    Hashtbl.fold
      (fun name w acc ->
        let arr =
          Array.init bound (fun t ->
              if name = "reset" then
                if t < reset_cycles then Gate.const_bits ctx (Bv.one 1)
                else Gate.const_bits ctx (Bv.zero 1)
              else Gate.fresh_bits ctx w)
        in
        (name, arr) :: acc)
      p.Prep.input_names []
  in
  let input_of name t = Array.get (List.assoc name input_bits) t in
  (* state: registers and memory words, per cycle boundary *)
  let reg_state : (string, Gate.bits) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Prep.reg_info) ->
      Hashtbl.replace reg_state r.Prep.reg_name (init_bits (Ty.width r.Prep.reg_ty)))
    p.Prep.regs;
  let mem_state : (string, Gate.bits array) Hashtbl.t = Hashtbl.create 8 in
  let latched : (string, Gate.bits) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (mname, (ms : Prep.mem_state)) ->
      let w = Ty.width ms.Prep.mem.Stmt.mem_data in
      if ms.Prep.mem.Stmt.mem_depth > 1024 then
        raise
          (Formal_error
             (Printf.sprintf "memory %s too deep (%d) for bit-blasting" mname
                ms.Prep.mem.Stmt.mem_depth));
      Hashtbl.replace mem_state mname
        (Array.init ms.Prep.mem.Stmt.mem_depth (fun i ->
             match ms.Prep.mem.Stmt.mem_init with
             | Some _ -> Gate.const_bits ctx (Bv.extend_u ms.Prep.data.(i) w)
             | None -> init_bits w));
      List.iter
        (fun (rp, _) ->
          Hashtbl.replace latched (mname ^ "." ^ rp)
            (init_bits (Ty.clog2 ms.Prep.mem.Stmt.mem_depth)))
        ms.Prep.latched_addrs)
    p.Prep.mems;
  (* per-cycle lazy evaluation into literals *)
  let mem_data_port = Hashtbl.create 8 in
  List.iter
    (fun (mname, (ms : Prep.mem_state)) ->
      List.iter
        (fun { Stmt.rp_name } ->
          Hashtbl.replace mem_data_port (mname ^ "." ^ rp_name ^ ".data") (mname, ms, rp_name))
        ms.Prep.mem.Stmt.mem_readers)
    p.Prep.mems;
  let covers = ref (List.map (fun (n, _) -> (n, Array.make bound (Gate.ff ctx))) p.Prep.covers) in
  for t = 0 to bound - 1 do
    let env = { values = Hashtbl.create 256; in_progress = Hashtbl.create 64 } in
    let rec value name : Gate.bits =
      match Hashtbl.find_opt env.values name with
      | Some b -> b
      | None ->
          if Hashtbl.mem env.in_progress name then
            raise (Formal_error ("combinational loop through " ^ name));
          Hashtbl.replace env.in_progress name ();
          let b = compute name in
          Hashtbl.remove env.in_progress name;
          Hashtbl.replace env.values name b;
          b
    and compute name : Gate.bits =
      if Hashtbl.mem p.Prep.input_names name then input_of name t
      else
        match Hashtbl.find_opt reg_state name with
        | Some b -> b
        | None -> (
            match Hashtbl.find_opt mem_data_port name with
            | Some (mname, ms, rp) ->
                let words = Hashtbl.find mem_state mname in
                let addr =
                  if ms.Prep.mem.Stmt.mem_read_latency > 0 then
                    Hashtbl.find latched (mname ^ "." ^ rp)
                  else value (mname ^ "." ^ rp ^ ".addr")
                in
                read_mux words addr (Ty.width ms.Prep.mem.Stmt.mem_data)
            | None -> (
                match Hashtbl.find_opt p.Prep.node_defs name with
                | Some e -> blast e
                | None -> (
                    match Hashtbl.find_opt p.Prep.drivers name with
                    | Some e -> blast e
                    | None -> Gate.zero_bits ctx (Ty.width (ty_of name)))))
    and read_mux words addr w : Gate.bits =
      let result = ref (Gate.zero_bits ctx w) in
      Array.iteri
        (fun i word ->
          let sel =
            Gate.eq_bits ctx addr (Gate.const_bits ctx (Bv.of_int ~width:(Array.length addr) i))
          in
          result := Gate.mux_bits ctx sel word !result)
        words;
      !result
    and blast (e : Expr.t) : Gate.bits =
      match e with
      | Expr.Ref n -> value n
      | Expr.UIntLit v | Expr.SIntLit v -> Gate.const_bits ctx v
      | Expr.Mux (s, a, b) ->
          let sb = blast s in
          Gate.mux_bits ctx sb.(0) (blast a) (blast b)
      | Expr.Unop (op, a) -> Gate.unop ctx op ~ta:(Expr.type_of ty_of a) (blast a)
      | Expr.Binop (op, a, b) ->
          Gate.binop ctx op ~ta:(Expr.type_of ty_of a) ~tb:(Expr.type_of ty_of b) (blast a)
            (blast b)
      | Expr.Intop (op, n, a) -> Gate.intop ctx op n ~ta:(Expr.type_of ty_of a) (blast a)
      | Expr.Bits (a, hi, lo) -> Gate.bits_op (blast a) ~hi ~lo
    in
    (* cover predicates at cycle t *)
    covers :=
      List.map2
        (fun (name, pred) (name', arr) ->
          assert (String.equal name name');
          arr.(t) <- (blast pred).(0);
          (name', arr))
        p.Prep.covers !covers;
    (* next state *)
    let next_regs =
      List.map
        (fun (r : Prep.reg_info) ->
          let n = r.Prep.reg_name in
          let base =
            match Hashtbl.find_opt p.Prep.drivers n with
            | Some e -> blast e
            | None -> value n
          in
          let v =
            match r.Prep.reset with
            | Some (rst, init) ->
                let rb = blast rst in
                Gate.mux_bits ctx rb.(0) (blast init) base
            | None -> base
          in
          (n, v))
        p.Prep.regs
    in
    let next_mems =
      List.map
        (fun (mname, (ms : Prep.mem_state)) ->
          let words = Hashtbl.find mem_state mname in
          let words' =
            Array.mapi
              (fun i word ->
                List.fold_left
                  (fun acc { Stmt.wp_name } ->
                    let en = (value (mname ^ "." ^ wp_name ^ ".en")).(0) in
                    let addr = value (mname ^ "." ^ wp_name ^ ".addr") in
                    let data = value (mname ^ "." ^ wp_name ^ ".data") in
                    let hit =
                      Gate.and2 ctx en
                        (Gate.eq_bits ctx addr
                           (Gate.const_bits ctx (Bv.of_int ~width:(Array.length addr) i)))
                    in
                    Gate.mux_bits ctx hit data acc)
                  word ms.Prep.mem.Stmt.mem_writers)
              words
          in
          let latches =
            List.map
              (fun (rp, _) -> (mname ^ "." ^ rp, value (mname ^ "." ^ rp ^ ".addr")))
              ms.Prep.latched_addrs
          in
          (mname, words', latches))
        p.Prep.mems
    in
    List.iter (fun (n, v) -> Hashtbl.replace reg_state n v) next_regs;
    List.iter
      (fun (mname, words', latches) ->
        Hashtbl.replace mem_state mname words';
        List.iter (fun (k, v) -> Hashtbl.replace latched k v) latches)
      next_mems
  done;
  { ctx; p; bound; input_bits; cover_lits = !covers }
