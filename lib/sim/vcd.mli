(** Minimal VCD (Value Change Dump) writer and reader, for the recorded
    replay testbenches of §5.1 (and for waveform artifacts generally). *)

module Bv = Sic_bv.Bv

type var = { var_name : string; var_width : int; code : string }

val code_of_index : int -> string
(** Printable VCD identifier codes. *)

(** {1 Writer} *)

type writer

val create_writer : out_channel -> scope:string -> (string * int) list -> writer
(** Emit the header; one [$var wire] per (name, width). *)

val sample : writer -> (string * Bv.t) list -> unit
(** Emit one timestep; only changed values are dumped. *)

(** {1 Reader} *)

type wave = {
  signals : (string * int) list;
  frames : (string * Bv.t) list array;  (** complete assignment per step *)
}

exception Vcd_error of string

val read_string : string -> wave
val read_file : string -> wave
