(** Compiled simulator — the Verilator analogue (§3.2), built around a
    word-level engine: the lowered circuit is compiled once into a
    topologically-sorted flat instruction tape over unboxed native-int
    slots (signals wider than 62 bits fall back to {!Sic_bv.Bv} slots).
    Higher start-up cost than the interpreter, much higher steady-state
    throughput; a simulation cycle allocates nothing when every signal
    fits a machine word. See {!Ref_tape} for the retired closure-per-
    instruction engine kept as the differential-testing baseline. *)

type t
(** A built simulation (shared with {!Essent}). *)

type profile_mode =
  | Counts_only
      (** Exact per-instruction hit (value-change) counts, no timing. *)
  | Sampled of int
      (** Counts plus per-instruction self-time sampled every [n]th
          [run_tape] with a monotonic clock. *)

val build :
  ?builtin_line:bool ->
  ?activity:bool ->
  ?profile:profile_mode ->
  Sic_ir.Circuit.t ->
  t
(** [~builtin_line:true] reproduces a simulator with {e hard-coded} line
    coverage (Verilator's native mode, the Figure 8 comparator): the same
    instrumentation is performed internally by the simulator rather than
    by an IR pass, so its counters keep the usual [l_*] names. Requires a
    high-form circuit. [~activity:true] enables ESSENT-style conditional
    evaluation over per-instruction dirty flags. [?profile] builds the
    tape in profiling mode: each tape position carries provenance back to
    its originating IR statement and source location (see {!profile}),
    and the engine always runs the change-driven activity schedule —
    change detection is what that scheduler does anyway, and both
    schedules produce identical values. The tape itself is unchanged; in
    particular a named statement that is a pure copy is still eliminated
    and gets no row (its engine cost is zero and its hit counts equal its
    producer's). *)

val line_db : t -> Sic_coverage.Line_coverage.db option
(** The database of the internal instrumentation performed by
    [~builtin_line:true]; [None] otherwise. *)

val stats : t -> string
(** One-line tape composition summary (instruction/slot counts, how many
    dropped to the boxed wide path) for bench output and debugging. *)

val to_backend : name:string -> t -> Backend.t

val create : ?builtin_line:bool -> Sic_ir.Circuit.t -> Backend.t
(** [build] + [to_backend ~name:"compiled"]. *)

val profile : t -> Profile.design_profile option
(** The accumulated profile of a [?profile] build ([None] otherwise).
    Hit counts are value-change counts, identical across the plain and
    activity schedules and across worker splits; timings are present only
    under {!Sampled}. *)

val exec_counts : t -> int array
(** Per-tape-position execution counts of a [?profile] build: the
    dirty-flag scheduler's exact re-evaluation counts ([[||]] when not
    profiling). Live-only diagnostic — deliberately not part of the
    {!Profile} artifact, whose bytes must not depend on the scheduler. *)
