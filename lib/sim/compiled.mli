(** Compiled simulator — the Verilator analogue (§3.2): the lowered
    circuit is compiled once into a topologically-sorted tape of update
    instructions over a flat value array. Higher start-up cost, much
    higher steady-state throughput than the interpreter. *)

type t
(** A built simulation (shared with {!Essent}). *)

val build : ?builtin_line:bool -> ?activity:bool -> Sic_ir.Circuit.t -> t
(** [~builtin_line:true] reproduces a simulator with {e hard-coded} line
    coverage (Verilator's native mode, the Figure 8 comparator): the same
    instrumentation is performed internally by the simulator rather than
    by an IR pass. Requires a high-form circuit. [~activity:true] enables
    ESSENT-style conditional evaluation. *)

val to_backend : name:string -> t -> Backend.t

val create : ?builtin_line:bool -> Sic_ir.Circuit.t -> Backend.t
(** [build] + [to_backend ~name:"compiled"]. *)
