(** Reference tape engine — the original compiled backend, kept as a
    baseline. The lowered circuit is compiled once into a
    topologically-sorted tape of closure instructions over a flat {!Bv.t}
    array; each [step] replays the tape and commits sequential state.
    Every operation allocates a fresh bitvector, so steady-state throughput
    is bounded by the allocator — exactly the cost profile the word-level
    engine ({!Compiled}) removes. It survives for two reasons: the
    differential-equivalence suite pins the word-level engine against it,
    and [bench sim] uses it as the speedup denominator.

    [~activity:true] turns on ESSENT-style conditional evaluation: an
    instruction is skipped when none of its inputs changed since the
    previous cycle. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Prep = Backend.Prep

type instr = {
  dst : int;
  deps : int list;
  fn : unit -> Bv.t;
}

type mem_rt = {
  ms : Prep.mem_state;
  write_ports : (int * int * int) list;  (** en, addr, data slots *)
  sync_reads : (string * int * int) list;  (** port, addr slot, data slot *)
}

type t = {
  p : Prep.prepared;
  slot_of : (string, int) Hashtbl.t;
  vals : Bv.t array;
  changed : bool array;
  tape : instr array;
  tape_names : string array;  (** statement name per tape position *)
  hits : int array option;
      (** [?profile] builds: value-change count per tape position — the
          same quantity the word-level profiler reports, for the
          differential hit-count suite *)
  covers : (string * (unit -> Bv.t)) array;
  counters : int array;
  cover_values : (string * (unit -> Bv.t) * (unit -> Bv.t) * int array) array;
  stops : (unit -> Bv.t) array;
  prints : ((unit -> Bv.t) * string * (unit -> Bv.t) list) array;
  reg_next : (int * (unit -> Bv.t)) array;  (** slot, next-value closure *)
  mems : mem_rt array;
  activity : bool;
  mutable first_run : bool;
      (** activity mode: the first tape run evaluates everything, so
          dependency-free instructions (constants) get their value *)
  mutable tape_dirty : bool;
  mutable cycle : int;
  mutable stopped : bool;
}

let build ?(activity = false) ?(profile = false) (c : Circuit.t) : t =
  let p = Prep.prepare c in
  let ty_of = Circuit.lookup_of p.Prep.env in
  (* slot assignment: every named value lives in one slot *)
  let slot_of = Hashtbl.create 256 in
  let n_slots = ref 0 in
  let slot name =
    match Hashtbl.find_opt slot_of name with
    | Some i -> i
    | None ->
        let i = !n_slots in
        incr n_slots;
        Hashtbl.replace slot_of name i;
        i
  in
  Hashtbl.iter (fun name _ -> ignore (slot name)) p.Prep.env;
  let vals = Array.make !n_slots (Bv.zero 1) in
  let changed = Array.make !n_slots true in
  Hashtbl.iter (fun name ty -> vals.(Hashtbl.find slot_of name) <- Bv.zero (Ty.width ty)) p.Prep.env;
  (* expression compiler *)
  let rec comp (e : Expr.t) : unit -> Bv.t =
    match e with
    | Expr.Ref n ->
        let i = slot n in
        fun () -> vals.(i)
    | Expr.UIntLit v | Expr.SIntLit v -> fun () -> v
    | Expr.Mux (s, a, b) ->
        let cs = comp s and ca = comp a and cb = comp b in
        fun () -> if Bv.to_bool (cs ()) then ca () else cb ()
    | Expr.Unop (op, a) ->
        let ta = Expr.type_of ty_of a in
        let ca = comp a in
        fun () -> Eval.unop op ~ta (ca ())
    | Expr.Binop (op, a, b) ->
        let ta = Expr.type_of ty_of a and tb = Expr.type_of ty_of b in
        let ca = comp a and cb = comp b in
        fun () -> Eval.binop op ~ta ~tb (ca ()) (cb ())
    | Expr.Intop (op, n, a) ->
        let ta = Expr.type_of ty_of a in
        let ca = comp a in
        fun () -> Eval.intop op n ~ta (ca ())
    | Expr.Bits (a, hi, lo) ->
        let ca = comp a in
        fun () -> Eval.bits ~hi ~lo (ca ())
  in
  (* build the instruction set: nodes, driven combinational sinks, and
     combinational memory reads. Registers and sync-read data are state. *)
  let reg_names = Prep.reg_name_set p in
  let instrs : (string * instr) list ref = ref [] in
  let add_instr name deps fn =
    instrs := (name, { dst = slot name; deps = List.map slot deps; fn }) :: !instrs
  in
  Hashtbl.iter
    (fun name e -> add_instr name (Expr.references e) (comp e))
    p.Prep.node_defs;
  Hashtbl.iter
    (fun name e ->
      if not (Hashtbl.mem reg_names name) then add_instr name (Expr.references e) (comp e))
    p.Prep.drivers;
  List.iter
    (fun (mname, (ms : Prep.mem_state)) ->
      if ms.Prep.mem.Stmt.mem_read_latency = 0 then
        List.iter
          (fun { Stmt.rp_name } ->
            let addr_name = mname ^ "." ^ rp_name ^ ".addr" in
            let data_name = mname ^ "." ^ rp_name ^ ".data" in
            let ai = slot addr_name in
            let zero = Bv.zero (Ty.width ms.Prep.mem.Stmt.mem_data) in
            add_instr data_name [ addr_name ] (fun () ->
                let a = Bv.to_int_trunc vals.(ai) in
                if a < Array.length ms.Prep.data then ms.Prep.data.(a) else zero))
          ms.Prep.mem.Stmt.mem_readers)
    p.Prep.mems;
  (* topological sort (Kahn); only dependencies that are themselves
     instructions matter *)
  let by_name = Hashtbl.create 256 in
  List.iter (fun (n, i) -> Hashtbl.replace by_name n i) !instrs;
  let indegree = Hashtbl.create 256 in
  let dependents : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let name_of_slot = Hashtbl.create 256 in
  Hashtbl.iter (fun n i -> Hashtbl.replace name_of_slot i n) slot_of;
  List.iter
    (fun (n, i) ->
      let deps =
        List.filter_map
          (fun d ->
            let dn = Hashtbl.find name_of_slot d in
            if Hashtbl.mem by_name dn then Some dn else None)
          i.deps
      in
      Hashtbl.replace indegree n (List.length deps);
      List.iter
        (fun d ->
          Hashtbl.replace dependents d (n :: Option.value ~default:[] (Hashtbl.find_opt dependents d)))
        deps)
    !instrs;
  let queue = Queue.create () in
  Hashtbl.iter (fun n d -> if d = 0 then Queue.add n queue) indegree;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    order := (n, Hashtbl.find by_name n) :: !order;
    incr emitted;
    List.iter
      (fun d ->
        let k = Hashtbl.find indegree d - 1 in
        Hashtbl.replace indegree d k;
        if k = 0 then Queue.add d queue)
      (Option.value ~default:[] (Hashtbl.find_opt dependents n))
  done;
  if !emitted <> List.length !instrs then
    Backend.error "combinational loop in circuit %s" c.Circuit.circuit_name;
  let ordered = Array.of_list (List.rev !order) in
  let tape = Array.map snd ordered in
  let tape_names = Array.map fst ordered in
  (* covers, cover-values, stops, register next-values *)
  let covers = Array.of_list (List.map (fun (n, e) -> (n, comp e)) p.Prep.covers) in
  let counters = Array.make (Array.length covers) 0 in
  let cover_values =
    Array.of_list
      (List.map
         (fun (n, sig_, en, w) -> (n, comp sig_, comp en, Array.make (1 lsl min w 20) 0))
         p.Prep.cover_values)
  in
  let stops = Array.of_list (List.map (fun (_, e) -> comp e) p.Prep.stops) in
  let prints =
    Array.of_list
      (List.map (fun (c, msg, args) -> (comp c, msg, List.map comp args)) p.Prep.prints)
  in
  let reg_next =
    Array.of_list
      (List.map
         (fun (r : Prep.reg_info) ->
           let n = r.Prep.reg_name in
           let base =
             match Hashtbl.find_opt p.Prep.drivers n with
             | Some e -> comp e
             | None ->
                 let i = slot n in
                 fun () -> vals.(i)
           in
           let next =
             match r.Prep.reset with
             | Some (rst, init) ->
                 let crst = comp rst and cinit = comp init in
                 fun () -> if Bv.to_bool (crst ()) then cinit () else base ()
             | None -> base
           in
           (slot n, next))
         p.Prep.regs)
  in
  let mems =
    Array.of_list
      (List.map
         (fun (mname, (ms : Prep.mem_state)) ->
           {
             ms;
             write_ports =
               List.map
                 (fun { Stmt.wp_name } ->
                   ( slot (mname ^ "." ^ wp_name ^ ".en"),
                     slot (mname ^ "." ^ wp_name ^ ".addr"),
                     slot (mname ^ "." ^ wp_name ^ ".data") ))
                 ms.Prep.mem.Stmt.mem_writers;
             sync_reads =
               (if ms.Prep.mem.Stmt.mem_read_latency > 0 then
                  List.map
                    (fun { Stmt.rp_name } ->
                      ( rp_name,
                        slot (mname ^ "." ^ rp_name ^ ".addr"),
                        slot (mname ^ "." ^ rp_name ^ ".data") ))
                    ms.Prep.mem.Stmt.mem_readers
                else []);
           })
         p.Prep.mems)
  in
  {
    p;
    slot_of;
    vals;
    changed;
    tape;
    tape_names;
    hits = (if profile then Some (Array.make (Array.length tape) 0) else None);
    covers;
    counters;
    cover_values;
    stops;
    prints;
    reg_next;
    mems;
    activity;
    first_run = true;
    tape_dirty = true;
    cycle = 0;
    stopped = false;
  }

let run_tape (t : t) =
  (match t.hits with
  | None ->
      if t.activity then begin
        (* conditional evaluation: skip instructions whose inputs are
           unchanged *)
        let first = t.first_run in
        t.first_run <- false;
        Array.iter
          (fun (i : instr) ->
            if first || List.exists (fun d -> t.changed.(d)) i.deps then begin
              let v = i.fn () in
              if not (Bv.equal v t.vals.(i.dst)) then begin
                t.vals.(i.dst) <- v;
                t.changed.(i.dst) <- true
              end
            end)
          t.tape
      end
      else Array.iter (fun (i : instr) -> t.vals.(i.dst) <- i.fn ()) t.tape
  | Some hits ->
      (* profiled: count value changes per tape position. Both schedules
         compare-before-store, so the counts are a property of the value
         stream — identical plain vs activity, and identical to the
         word-level profiler's hit counts *)
      let first = t.first_run in
      t.first_run <- false;
      Array.iteri
        (fun k (i : instr) ->
          if (not t.activity) || first || List.exists (fun d -> t.changed.(d)) i.deps
          then begin
            let v = i.fn () in
            if not (Bv.equal v t.vals.(i.dst)) then begin
              t.vals.(i.dst) <- v;
              t.changed.(i.dst) <- true;
              hits.(k) <- hits.(k) + 1
            end
          end)
        t.tape);
  t.tape_dirty <- false

let clock_edge (t : t) =
  if t.tape_dirty then run_tape t;
  (* sample covers *)
  Array.iteri
    (fun k (_, pred) ->
      if Bv.to_bool (pred ()) then t.counters.(k) <- Backend.sat_incr t.counters.(k))
    t.covers;
  Array.iter
    (fun (_, sig_, en, arr) ->
      if Bv.to_bool (en ()) then begin
        let v = Bv.to_int_trunc (sig_ ()) in
        if v < Array.length arr then arr.(v) <- Backend.sat_incr arr.(v)
      end)
    t.cover_values;
  Array.iter (fun cond -> if Bv.to_bool (cond ()) then t.stopped <- true) t.stops;
  Array.iter
    (fun (cond, message, args) ->
      if Bv.to_bool (cond ()) then
        !Backend.print_sink (Prep.format_print message (List.map (fun a -> a ()) args)))
    t.prints;
  (* compute next state from pre-edge values *)
  let nexts = Array.map (fun (s, f) -> (s, f ())) t.reg_next in
  let mem_ops =
    Array.map
      (fun (m : mem_rt) ->
        let writes =
          List.filter_map
            (fun (en, addr, data) ->
              if Bv.to_bool t.vals.(en) then
                Some (Bv.to_int_trunc t.vals.(addr), t.vals.(data))
              else None)
            m.write_ports
        in
        let reads =
          List.map (fun (_, addr, data) -> (data, Bv.to_int_trunc t.vals.(addr))) m.sync_reads
        in
        (m, writes, reads))
      t.mems
  in
  (* commit *)
  if t.activity then Array.fill t.changed 0 (Array.length t.changed) false;
  Array.iter
    (fun (s, v) ->
      if t.activity then begin
        if not (Bv.equal t.vals.(s) v) then begin
          t.vals.(s) <- v;
          t.changed.(s) <- true
        end
      end
      else t.vals.(s) <- v)
    nexts;
  Array.iter
    (fun ((m : mem_rt), writes, reads) ->
      (* writes commit before sync reads are captured (write-first
         read-under-write, matching the interpreter) *)
      List.iter
        (fun (a, v) -> if a < Array.length m.ms.Prep.data then m.ms.Prep.data.(a) <- v)
        writes;
      List.iter
        (fun (data_slot, a) ->
          let v =
            if a < Array.length m.ms.Prep.data then m.ms.Prep.data.(a)
            else Bv.zero (Ty.width m.ms.Prep.mem.Stmt.mem_data)
          in
          if t.activity then begin
            if not (Bv.equal t.vals.(data_slot) v) then begin
              t.vals.(data_slot) <- v;
              t.changed.(data_slot) <- true
            end
          end
          else t.vals.(data_slot) <- v)
        reads;
      if t.activity && writes <> [] then
        (* force combinational readers of this memory to re-evaluate *)
        List.iter
          (fun { Stmt.rp_name } ->
            if m.ms.Prep.mem.Stmt.mem_read_latency = 0 then
              let addr_slot =
                Hashtbl.find t.slot_of (m.ms.Prep.mem.Stmt.mem_name ^ "." ^ rp_name ^ ".addr")
              in
              t.changed.(addr_slot) <- true)
          m.ms.Prep.mem.Stmt.mem_readers)
    mem_ops;
  t.tape_dirty <- true;
  t.cycle <- t.cycle + 1

let to_backend ~name (t : t) : Backend.t =
  Backend.with_telemetry
    {
      Backend.backend_name = name;
      circuit = t.p.Prep.low;
      poke =
        (fun pname v ->
          match Hashtbl.find_opt t.p.Prep.input_names pname with
          | None -> Backend.error "poke: %s is not an input" pname
          | Some w ->
              let s = Hashtbl.find t.slot_of pname in
              let v = Bv.extend_u v w in
              if not (Bv.equal t.vals.(s) v) then begin
                t.vals.(s) <- v;
                t.changed.(s) <- true;
                t.tape_dirty <- true
              end);
      peek =
        (fun pname ->
          if t.tape_dirty then run_tape t;
          match Hashtbl.find_opt t.slot_of pname with
          | Some s -> t.vals.(s)
          | None -> Backend.error "peek: unknown signal %s" pname);
      step =
        (fun n ->
          for _ = 1 to n do
            clock_edge t
          done);
      counts =
        (fun () ->
          let out = Counts.create () in
          Array.iteri (fun k (n, _) -> Counts.set out n t.counters.(k)) t.covers;
          Array.iter
            (fun (n, _, _, arr) ->
              Array.iteri
                (fun v c -> Counts.set out (Sic_coverage.Cover_values.value_key n v) c)
                arr)
            t.cover_values;
          out);
      cycles = (fun () -> t.cycle);
      finished = (fun () -> t.stopped);
    }

let hit_counts (t : t) : (string * int) list =
  match t.hits with
  | None -> []
  | Some hits ->
      Array.to_list (Array.mapi (fun k n -> (n, hits.(k))) t.tape_names)

(** The baseline backend: closure tape over [Bv.t] values. *)
let create ?(activity = false) (c : Circuit.t) : Backend.t =
  let name = if activity then "ref-tape-activity" else "ref-tape" in
  to_backend ~name (build ~activity c)
