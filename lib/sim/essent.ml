(** Activity-driven simulator — the ESSENT analogue (§3.5).

    ESSENT accelerates RTL simulation by exploiting low activity factors:
    logic whose inputs did not change since the previous cycle is not
    re-evaluated. This backend shares the compiled tape of {!Compiled} and
    turns on its conditional-evaluation mode; per the paper's narrative,
    adding [cover] support to a fifth backend took hours, not weeks —
    here it is literally the same counter code. *)

let create (c : Sic_ir.Circuit.t) : Backend.t =
  Compiled.to_backend ~name:"essent" (Compiled.build ~activity:true c)
