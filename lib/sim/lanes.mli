(** Bit-parallel lane engine: up to 62 independent stimulus seeds per
    tape pass. The same shared {!Tape} the scalar {!Compiled} engine
    decodes is re-decoded in {e bit-sliced, transposed} form — every
    sliceable signal, 1-bit or wider, is stored as one packed native
    [int] {e plane} per bit, where bit [l] of a plane is lane [l]'s
    value of that bit. Structural instructions (copies, pads, constant
    shifts, bit extracts, concatenations, sign extensions) resolve at
    decode time to plane {e aliasing} and cost nothing at runtime;
    compute instructions (mux, add/sub, compares, bitwise ops,
    reductions) run as whole-plane kernels, a few bitwise ops per plane
    advancing all 62 lanes at once (ripple-carry for arithmetic,
    MSB-first lexicographic ripple for compares). Instructions the
    slicer has no kernel for (division, multiplication, dynamic shifts,
    memory ports) fall back to per-lane strided storage (or per-lane
    [Bv.t] rows beyond 62 bits) executed by a lane loop with the scalar
    engine's exact semantics, and a decode-time fixpoint keeps the two
    representations from ever feeding each other — so {e any} design
    runs, and mux/arith-heavy designs still vectorize their sliceable
    majority.

    Exactness is the paper's simulator-independence argument turned into
    an oracle: coverage counts are a property of the value stream, so lane
    [k] driven by stimulus stream [k] must produce counts byte-identical
    to a solo {!Compiled} run driven by the same stream —
    {!lane_counts}[ t k] is [Counts.equal] to that run's counts. Cover
    fires are harvested per pass with a count-trailing-zeros sweep over
    the packed fire plane ({!Sic_bv.Bv.ctz_int}), one increment per
    (point, fired lane). *)

type t

val build : ?builtin_line:bool -> ?lanes:int -> Sic_ir.Circuit.t -> t
(** Decode the shared tape for [lanes] parallel seeds (default and
    maximum 62, clamped to [1, 62]). *)

val lanes : t -> int

val vectorized_fraction : t -> float
(** Fraction of tape instructions decoded to lane-parallel form — plane
    aliases (free) plus whole-plane kernels; the rest iterate per lane.
    This is the number that explains a design's lane speedup. *)

val stats : t -> string
(** Tape composition: aliased / plane-kernel / per-lane instruction
    counts plus slot and physical-plane totals. *)

val poke_lane : t -> lane:int -> string -> Sic_bv.Bv.t -> unit
(** Set an input in one lane only (other lanes keep their values). *)

val step : t -> int -> unit

val cycles : t -> int

val lane_counts : t -> int -> Sic_coverage.Counts.t
(** Coverage counts accumulated by one lane — exactly the counts a solo
    scalar run under the same stimulus stream would report. *)

val lane_finished : t -> int -> bool
(** Whether a [stop] fired in this lane. *)

val run_random : t -> streams:(unit -> int) array -> cycles:int -> unit
(** Drive every data input of every lane for [cycles] cycles, lane [l]
    drawing from [streams.(l)] (one stream per lane, length [lanes]).
    Per cycle and lane the draw order matches
    {!Backend.random_stimulus} exactly, so lane [l]'s stimulus is
    byte-identical to a solo run over the same stream. Does not reset;
    run {!Backend.reset_sequence} on the facade (or poke reset) first. *)

val to_backend : name:string -> t -> Backend.t
(** Lockstep facade: pokes drive all lanes with the same value, peeks and
    counts read lane 0, [finished] reports all lanes stopped. Under
    lockstep stimulus every lane equals a scalar run, so the facade drops
    into the differential suites as a sixth backend column. *)

val create : ?builtin_line:bool -> ?lanes:int -> Sic_ir.Circuit.t -> Backend.t
(** [to_backend ~name:"lanes" (build c)]. *)
