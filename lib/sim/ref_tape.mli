(** Reference tape engine — the original closure-per-instruction compiled
    backend over {!Sic_bv.Bv} values, kept as the differential-testing
    oracle and the [bench sim] speedup baseline. Allocates on every
    operation; see {!Compiled} for the word-level engine that replaced it
    in production. *)

open Sic_ir

type t

val build : ?activity:bool -> ?profile:bool -> Circuit.t -> t
(** Compile a circuit into a closure tape. [~activity:true] enables
    ESSENT-style conditional evaluation (skip instructions whose inputs
    did not change). [~profile:true] counts value changes per tape
    instruction (no timing) — the oracle for the word-level profiler's
    hit counts. Lowers to low form first if needed. *)

val hit_counts : t -> (string * int) list
(** Per-statement value-change counts of a [~profile:true] build, in tape
    order ([[]] otherwise). Scheduler-independent: plain and activity
    builds report identical counts. *)

val to_backend : name:string -> t -> Backend.t

val create : ?activity:bool -> Circuit.t -> Backend.t
(** Backend named ["ref-tape"] (or ["ref-tape-activity"]). *)
