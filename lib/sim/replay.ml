(** Record-and-replay testbenches (§5.1 methodology).

    [record] runs a stimulus program against a backend while capturing the
    top-level inputs each cycle; [replay] plays a captured trace into any
    backend — a minimal testbench that isolates raw simulation time from
    stimulus generation, and the mechanism behind the cross-backend
    "identical counts" tests. *)

module Bv = Sic_bv.Bv

type trace = {
  input_names : string list;  (** includes reset *)
  frames : Bv.t array array;  (** frames.(cycle).(input index) *)
}

let cycles (t : trace) = Array.length t.frames

(** [record backend ~cycles drive] steps [backend] for [cycles] edges; each
    cycle [drive backend cycle] is called first to poke inputs, then the
    pre-edge input values are captured. *)
let record (b : Backend.t) ~cycles (drive : Backend.t -> int -> unit) : trace =
  let input_names =
    "reset" :: List.map fst (Backend.data_inputs b)
  in
  let frames = Array.make cycles [||] in
  for cycle = 0 to cycles - 1 do
    drive b cycle;
    frames.(cycle) <- Array.of_list (List.map b.Backend.peek input_names);
    b.Backend.step 1
  done;
  { input_names; frames }

(** Replay a trace from the beginning into a fresh backend instance.
    Trace channels that are not inputs of the target (e.g. a full
    waveform dump that also recorded outputs and registers) are
    ignored. *)
let replay (b : Backend.t) (t : trace) =
  let pokable =
    "reset" :: List.map fst (Backend.data_inputs b)
  in
  let names = Array.of_list t.input_names in
  let keep = Array.map (fun n -> List.mem n pokable) names in
  Array.iter
    (fun frame ->
      Array.iteri (fun i v -> if keep.(i) then b.Backend.poke names.(i) v) frame;
      b.Backend.step 1)
    t.frames

(** Save / load a trace as a VCD file, so recorded workloads are ordinary
    waveform artifacts. *)
let save_vcd path (b : Backend.t) (t : trace) =
  let widths =
    List.map
      (fun n ->
        if n = "reset" then ("reset", 1)
        else (n, Sic_ir.Ty.width (List.assoc n (Backend.data_inputs b))))
      t.input_names
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w = Vcd.create_writer oc ~scope:"replay" widths in
      Array.iter
        (fun frame ->
          Vcd.sample w (List.mapi (fun i n -> (n, frame.(i))) t.input_names))
        t.frames)

let load_vcd path : trace =
  let wave = Vcd.read_file path in
  let input_names = List.map fst wave.Vcd.signals in
  let frames =
    Array.map
      (fun assignment ->
        Array.of_list
          (List.map
             (fun n ->
               match List.assoc_opt n assignment with
               | Some v -> v
               | None -> Bv.zero 1)
             input_names))
      wave.Vcd.frames
  in
  { input_names; frames }
