(** Record-and-replay testbenches (§5.1 methodology).

    [record] runs a stimulus program against a backend while capturing the
    top-level inputs each cycle; [replay] plays a captured trace into any
    backend — a minimal testbench that isolates raw simulation time from
    stimulus generation, and the mechanism behind the cross-backend
    "identical counts" tests. *)

module Bv = Sic_bv.Bv

type trace = {
  input_names : string list;  (** includes reset *)
  frames : Bv.t array array;  (** frames.(cycle).(input index) *)
}

let cycles (t : trace) = Array.length t.frames

(** [record backend ~cycles drive] steps [backend] for [cycles] edges; each
    cycle [drive backend cycle] is called first to poke inputs, then the
    pre-edge input values are captured. *)
let record (b : Backend.t) ~cycles (drive : Backend.t -> int -> unit) : trace =
  let input_names =
    "reset" :: List.map fst (Backend.data_inputs b)
  in
  let frames = Array.make cycles [||] in
  for cycle = 0 to cycles - 1 do
    drive b cycle;
    frames.(cycle) <- Array.of_list (List.map b.Backend.peek input_names);
    b.Backend.step 1
  done;
  { input_names; frames }

(** Replay a trace from the beginning into a fresh backend instance.
    Trace channels that are not inputs of the target (e.g. a full
    waveform dump that also recorded outputs and registers) are
    ignored. *)
let replay (b : Backend.t) (t : trace) =
  let pokable =
    "reset" :: List.map fst (Backend.data_inputs b)
  in
  let names = Array.of_list t.input_names in
  let keep = Array.map (fun n -> List.mem n pokable) names in
  Array.iter
    (fun frame ->
      Array.iteri (fun i v -> if keep.(i) then b.Backend.poke names.(i) v) frame;
      b.Backend.step 1)
    t.frames

(* ------------------------------------------------------------------ *)
(* Text interchange                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad_format of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_format m)) fmt

let format_header = "# sic replay trace v1"

(** The pipe/artifact serialization: a versioned header, the input-channel
    names, then one line per cycle of space-separated binary values (the
    string length {e is} each value's width). Line-oriented and fully
    self-describing, in the same house style as the counts and timeline
    formats — fleet workers ship BMC witnesses back over their result
    pipes in exactly this text. *)
let to_string (t : trace) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf format_header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("inputs " ^ String.concat " " t.input_names);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "frames %d\n" (Array.length t.frames));
  Array.iter
    (fun frame ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Bv.to_binary_string v))
        frame;
      Buffer.add_char buf '\n')
    t.frames;
  Buffer.contents buf

let of_string (s : string) : trace =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: inputs_line :: frames_line :: rest ->
      if String.trim header <> format_header then
        bad "line 1: expected %S, got %S" format_header header;
      let input_names =
        match String.split_on_char ' ' (String.trim inputs_line) with
        | "inputs" :: names when names <> [] -> names
        | _ -> bad "line 2: expected `inputs <name>...'"
      in
      let n_frames =
        match String.split_on_char ' ' (String.trim frames_line) with
        | [ "frames"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> n
            | _ -> bad "line 3: bad frame count %S" n)
        | _ -> bad "line 3: expected `frames <n>'"
      in
      let width = List.length input_names in
      let frame_lines = Array.of_list rest in
      if Array.length frame_lines < n_frames then
        bad "truncated trace: %d of %d frames" (Array.length frame_lines) n_frames;
      let frames =
        Array.init n_frames (fun f ->
            let cells =
              String.split_on_char ' ' (String.trim frame_lines.(f))
              |> List.filter (fun c -> c <> "")
            in
            if List.length cells <> width then
              bad "line %d: %d values for %d inputs" (f + 4) (List.length cells) width;
            Array.of_list
              (List.map
                 (fun c ->
                   try Bv.of_binary_string c
                   with Invalid_argument _ -> bad "line %d: bad value %S" (f + 4) c)
                 cells))
      in
      { input_names; frames }
  | _ -> bad "truncated trace header"

(** Save / load a trace as a VCD file, so recorded workloads are ordinary
    waveform artifacts. *)
let save_vcd path (b : Backend.t) (t : trace) =
  let widths =
    List.map
      (fun n ->
        if n = "reset" then ("reset", 1)
        else (n, Sic_ir.Ty.width (List.assoc n (Backend.data_inputs b))))
      t.input_names
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w = Vcd.create_writer oc ~scope:"replay" widths in
      Array.iter
        (fun frame ->
          Vcd.sample w (List.mapi (fun i n -> (n, frame.(i))) t.input_names))
        t.frames)

let load_vcd path : trace =
  let wave = Vcd.read_file path in
  let input_names = List.map fst wave.Vcd.signals in
  let frames =
    Array.map
      (fun assignment ->
        Array.of_list
          (List.map
             (fun n ->
               match List.assoc_opt n assignment with
               | Some v -> v
               | None -> Bv.zero 1)
             input_names))
      wave.Vcd.frames
  in
  { input_names; frames }
