(** The backend interface of §3.

    A backend simulates any synchronous low-form circuit and implements the
    one extra primitive, [cover]: sample a 1-bit signal at the rising clock
    edge and increment a saturating counter when it is true. At any point
    the accumulated counts are available as a {!Sic_coverage.Counts.t} map
    from cover name to count — the same format for every backend, which is
    what makes reports, merging, removal and fuzz feedback
    backend-agnostic. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Obs = Sic_obs.Obs

type t = {
  backend_name : string;
  circuit : Circuit.t;  (** the lowered circuit actually simulated *)
  poke : string -> Bv.t -> unit;  (** drive an input port *)
  peek : string -> Bv.t;  (** observe any named signal *)
  step : int -> unit;  (** advance N rising clock edges *)
  counts : unit -> Counts.t;  (** saturating cover counters, by name *)
  cycles : unit -> int;
  finished : unit -> bool;  (** a [stop] statement fired *)
}

exception Sim_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

(** Where [printf] statements write; tests may redirect it. This is the
    single runtime text sink shared with the telemetry layer — it {e is}
    {!Sic_obs.Obs.sink}, so swapping either ref captures or silences all
    runtime output in one place. *)
let print_sink : (string -> unit) ref = Obs.sink

(** Saturating counter ceiling shared by the software backends: counts are
    exact up to [2^62 - 1], far beyond any simulation length, but the type
    is still "saturating" as §3 requires. *)
let count_saturate = max_int

let sat_incr c = if c >= count_saturate then c else c + 1

(** How often (in cycles) an instrumented backend samples its throughput
    gauges when telemetry is on. *)
let sample_interval = ref 1000

(** Wrap a backend so that, while telemetry is on ({!Sic_obs.Obs.on}),
    [step] emits [sim.<backend>.cycles_per_sec] and
    [sim.<backend>.covers_hit] gauges every {!sample_interval} cycles. When
    telemetry is off the wrapper is a single flag check per [step] call —
    the per-cycle hot path is untouched. *)
let with_telemetry (b : t) : t =
  let last_cycles = ref (b.cycles ()) in
  let last_t = ref nan in
  let gauge_name suffix = "sim." ^ b.backend_name ^ "." ^ suffix in
  let sample () =
    let now = Obs.now_us () in
    let cycles = b.cycles () in
    (if not (Float.is_nan !last_t) then begin
       let dt = (now -. !last_t) /. 1e6 in
       let dc = cycles - !last_cycles in
       if dt > 0. && dc > 0 then
         Obs.gauge (gauge_name "cycles_per_sec") (float_of_int dc /. dt)
     end);
    let hit =
      List.fold_left
        (fun acc (_, c) -> if c > 0 then acc + 1 else acc)
        0
        (Counts.to_sorted_list (b.counts ()))
    in
    Obs.gauge (gauge_name "covers_hit") (float_of_int hit);
    last_t := now;
    last_cycles := cycles
  in
  let step n =
    if not (Obs.on ()) then b.step n
    else begin
      if Float.is_nan !last_t then sample ();
      let remaining = ref n in
      while !remaining > 0 do
        let due = !sample_interval - (b.cycles () - !last_cycles) in
        let k = max 1 (min !remaining due) in
        b.step k;
        remaining := !remaining - k;
        if b.cycles () - !last_cycles >= !sample_interval then sample ()
      done
    end
  in
  { b with step }

(** Wrap a backend so [f ~cycles ~covered] fires every [every] simulated
    cycles — the coverage-convergence sampling hook behind
    {!Sic_coverage.Timeline}. [covered] is the number of cover points hit
    so far. When [every <= 0] the backend is returned {e unchanged} — no
    wrapper, no per-step check — so the disabled path stays free (the §5
    overhead discipline). Unlike {!with_telemetry} this does not consult
    {!Sic_obs.Obs.on}: timelines are coverage data, not telemetry. *)
let with_sampler ~every f (b : t) : t =
  if every <= 0 then b
  else begin
    let next = ref (b.cycles () + every) in
    let sample () =
      f ~cycles:(b.cycles ()) ~covered:(Counts.covered_points (b.counts ()))
    in
    let step n =
      let remaining = ref n in
      while !remaining > 0 do
        let due = !next - b.cycles () in
        let k = max 1 (min !remaining due) in
        b.step k;
        remaining := !remaining - k;
        if b.cycles () >= !next then begin
          sample ();
          next := b.cycles () + every
        end
      done
    in
    { b with step }
  end

(** Hold reset high for [cycles] (default 1) clock edges, then release. *)
let reset_sequence ?(cycles = 1) (b : t) =
  b.poke "reset" (Bv.one 1);
  b.step cycles;
  b.poke "reset" (Bv.zero 1)

(** Input ports of the simulated circuit, except clock and reset. *)
let data_inputs (b : t) =
  let m = Circuit.main b.circuit in
  List.filter_map
    (fun (p : Circuit.port) ->
      match p.Circuit.dir with
      | Circuit.Input
        when p.Circuit.port_name <> "clock" && p.Circuit.port_name <> "reset" ->
          Some (p.Circuit.port_name, p.Circuit.port_ty)
      | Circuit.Input | Circuit.Output -> None)
    m.Circuit.ports

(** The default random workload shared by [sic cover], [sic profile] and
    the fleet's simulation jobs: drive every data input with a fresh
    random value, then step, [cycles] times. [bits] supplies randomness
    30 bits at a time (see {!Sic_bv.Bv.random}); pass a seeded
    [Sic_fuzz.Rng.bits30] for reproducibility. *)
let random_stimulus ~(bits : unit -> int) ~cycles (b : t) =
  let inputs = data_inputs b in
  for _ = 1 to cycles do
    List.iter (fun (n, ty) -> b.poke n (Bv.random ~width:(Ty.width ty) bits)) inputs;
    b.step 1
  done

let outputs (b : t) =
  let m = Circuit.main b.circuit in
  List.filter_map
    (fun (p : Circuit.port) ->
      match p.Circuit.dir with
      | Circuit.Output -> Some (p.Circuit.port_name, p.Circuit.port_ty)
      | Circuit.Input -> None)
    m.Circuit.ports

(** Shared preparation: lower to low form if needed and index the main
    module's contents the way every software backend wants them. *)
module Prep = struct
  type mem_state = {
    mem : Stmt.mem;
    data : Bv.t array;
    mutable latched_addrs : (string * Bv.t) list;
        (** per sync read port: address captured at the last clock edge *)
  }

  type reg_info = { reg_name : string; reg_ty : Ty.t; reset : (Expr.t * Expr.t) option }

  type prepared = {
    low : Circuit.t;
    main : Circuit.modul;
    env : (string, Ty.t) Hashtbl.t;
    drivers : (string, Expr.t) Hashtbl.t;  (** sink -> driving expression *)
    node_defs : (string, Expr.t) Hashtbl.t;
    regs : reg_info list;
    mems : (string * mem_state) list;
    covers : (string * Expr.t) list;  (** in declaration order *)
    cover_values : (string * Expr.t * Expr.t * int) list;
        (** name, signal, enable, signal width *)
    stops : (string * Expr.t) list;
    prints : (Expr.t * string * Expr.t list) list;
        (** condition, message with [%d] placeholders, arguments *)
    input_names : (string, int) Hashtbl.t;  (** name -> width *)
    infos : (string, Info.t) Hashtbl.t;
        (** defined name -> the defining statement's source info; the
            provenance half of the engine profiler (tape index -> root
            statement name -> [file:line]) *)
  }

  (** Substitute the argument values into a printf message ([%d] decimal,
      [%x] hexadecimal, [%b] binary, [%%] literal). Shared by backends so
      their output is identical. *)
  let format_print (message : string) (args : Bv.t list) : string =
    let buf = Buffer.create (String.length message + 16) in
    let args = ref args in
    let take () =
      match !args with
      | [] -> None
      | a :: rest ->
          args := rest;
          Some a
    in
    let n = String.length message in
    let i = ref 0 in
    while !i < n do
      (if message.[!i] = '%' && !i + 1 < n then begin
         (match message.[!i + 1] with
         | 'd' -> (
             match take () with
             | Some v -> Buffer.add_string buf (Bv.to_decimal_string v)
             | None -> Buffer.add_string buf "%d")
         | 'x' -> (
             match take () with
             | Some v -> Buffer.add_string buf (Bv.to_hex_string v)
             | None -> Buffer.add_string buf "%x")
         | 'b' -> (
             match take () with
             | Some v -> Buffer.add_string buf (Bv.to_binary_string v)
             | None -> Buffer.add_string buf "%b")
         | '%' -> Buffer.add_char buf '%'
         | c ->
             Buffer.add_char buf '%';
             Buffer.add_char buf c);
         incr i
       end
       else Buffer.add_char buf message.[!i]);
      incr i
    done;
    Buffer.contents buf

  (** Register names as a set — both tape engines need to know which
      driven sinks are sequential (their drivers become next-value
      computations, not combinational instructions). *)
  let reg_name_set (p : prepared) : (string, unit) Hashtbl.t =
    let set = Hashtbl.create 32 in
    List.iter (fun (r : reg_info) -> Hashtbl.replace set r.reg_name ()) p.regs;
    set

  (** Names of sync-read data ports ([mem.port.data] with latency > 0) —
      state updated at the clock edge, never computed by the tape. *)
  let sync_read_data_names (p : prepared) : (string, unit) Hashtbl.t =
    let set = Hashtbl.create 8 in
    List.iter
      (fun (mname, ms) ->
        if ms.mem.Stmt.mem_read_latency > 0 then
          List.iter
            (fun { Stmt.rp_name } ->
              Hashtbl.replace set (mname ^ "." ^ rp_name ^ ".data") ())
            ms.mem.Stmt.mem_readers)
      p.mems;
    set

  let prepare (c : Circuit.t) : prepared =
    let low = if Sic_passes.Compile.is_low_form c then c else Sic_passes.Compile.lower c in
    let main = Circuit.main low in
    let env = Circuit.build_env main in
    let ty_of = Circuit.lookup_of env in
    let drivers = Hashtbl.create 256 in
    let node_defs = Hashtbl.create 256 in
    let regs = ref [] in
    let mems = ref [] in
    let covers = ref [] in
    let cover_values = ref [] in
    let stops = ref [] in
    let prints = ref [] in
    let infos = Hashtbl.create 256 in
    Stmt.iter
      (fun s ->
        (match Stmt.def_name s with
        | Some n -> Hashtbl.replace infos n (Stmt.info s)
        | None -> ());
        match s with
        | Stmt.Node { name; expr; _ } -> Hashtbl.replace node_defs name expr
        | Stmt.Connect { loc; expr; _ } -> Hashtbl.replace drivers loc expr
        | Stmt.Reg { name; ty; reset; _ } ->
            regs := { reg_name = name; reg_ty = ty; reset } :: !regs
        | Stmt.Mem { mem; _ } ->
            let w = Ty.width mem.Stmt.mem_data in
            mems :=
              ( mem.Stmt.mem_name,
                {
                  mem;
                  data =
                    (match mem.Stmt.mem_init with
                    | Some init ->
                        Array.init mem.Stmt.mem_depth (fun i ->
                            if i < Array.length init then Bv.extend_u init.(i) w else Bv.zero w)
                    | None -> Array.make mem.Stmt.mem_depth (Bv.zero w));
                  latched_addrs =
                    (if mem.Stmt.mem_read_latency > 0 then
                       List.map
                         (fun { Stmt.rp_name } ->
                           (rp_name, Bv.zero (Ty.clog2 mem.Stmt.mem_depth)))
                         mem.Stmt.mem_readers
                     else []);
                } )
              :: !mems
        | Stmt.Cover { name; pred; _ } -> covers := (name, pred) :: !covers
        | Stmt.CoverValues { name; signal; en; _ } ->
            cover_values := (name, signal, en, Ty.width (Expr.type_of ty_of signal)) :: !cover_values
        | Stmt.Stop { name; cond; _ } -> stops := (name, cond) :: !stops
        | Stmt.Print { cond; message; args; _ } -> prints := (cond, message, args) :: !prints
        | Stmt.Wire _ | Stmt.Inst _ | Stmt.When _ -> ())
      main.Circuit.body;
    let input_names = Hashtbl.create 16 in
    List.iter
      (fun (p : Circuit.port) ->
        match p.Circuit.dir with
        | Circuit.Input -> Hashtbl.replace input_names p.Circuit.port_name (Ty.width p.Circuit.port_ty)
        | Circuit.Output -> ())
      main.Circuit.ports;
    {
      low;
      main;
      env;
      drivers;
      node_defs;
      regs = List.rev !regs;
      mems = List.rev !mems;
      covers = List.rev !covers;
      cover_values = List.rev !cover_values;
      stops = List.rev !stops;
      prints = List.rev !prints;
      input_names;
      infos;
    }
end
