(** The shared flat tape (see the interface). This is the pure-data
    front half of what used to live inside {!Compiled.build}: slot
    assignment, linearization into three-address proto-instructions,
    copy elimination through the alias map, and the Kahn topological
    sort. Engines ({!Compiled}'s scalar decoder, {!Lanes}' bit-parallel
    one) consume the ordered [protos] array and decide value
    representation per slot width. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Prep = Backend.Prep

type pins =
  | PCopy of int
  | PMux of int * int * int
  | PUnop of Expr.unop * Ty.t * int
  | PBinop of Expr.binop * Ty.t * Ty.t * int * int
  | PIntop of Expr.intop * int * Ty.t * int
  | PBits of int * int * int
  | PMemRead of int * int

type proto = { pdst : int; pdeps : int list; pins : pins }

type mem = {
  mem_name : string;
  m_width : int;
  m_depth : int;
  m_init : Bv.t array;
  wp_en : int array;
  wp_addr : int array;
  wp_data : int array;
  sr_addr : int array;
  sr_data : int array;
  comb_readers : int array;
}

type t = {
  p : Prep.prepared;
  slot_of : (string, int) Hashtbl.t;
  alias : int array;
  widths : int array;
  presets : (int * Bv.t) list;
  protos : proto array;
  roots : string array;
  root_slot : (string, int) Hashtbl.t;
  cover_names : string array;
  cover_slots : int array;
  cv_names : string array;
  cv_sig : int array;
  cv_en : int array;
  cv_widths : int array;
  stop_slots : int array;
  print_conds : int array;
  print_msgs : string array;
  print_args : int array array;
  regs : (int * int * int) array;
  mems : mem array;
  builtin_db : Sic_coverage.Line_coverage.db option;
}

(* Proto-instructions are linearized with memory reads referring to
   memories by name; the name -> index translation happens once the
   memory table is final. *)
type ppins =
  | QIns of pins
  | QMemRead of string * int

let build ?(builtin_line = false) (c : Circuit.t) : t =
  (* the built-in mode does its own (internal) line instrumentation before
     lowering, standing in for a simulator with line coverage hard-coded *)
  let c, builtin_db =
    if builtin_line then begin
      if Sic_passes.Compile.is_low_form c then
        Backend.error "builtin_line requires a high-form circuit";
      let c, db = Sic_coverage.Line_coverage.instrument c in
      (c, Some db)
    end
    else (c, None)
  in
  let p = Prep.prepare c in
  let ty_of = Circuit.lookup_of p.Prep.env in
  (* slot assignment: every named signal and every linearization temp *)
  let slot_of = Hashtbl.create 256 in
  let width_of_slot : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let n_slots = ref 0 in
  let fresh_slot w =
    let i = !n_slots in
    incr n_slots;
    Hashtbl.replace width_of_slot i w;
    i
  in
  let slot name =
    match Hashtbl.find_opt slot_of name with
    | Some i -> i
    | None ->
        let w =
          match Hashtbl.find_opt p.Prep.env name with
          | Some ty -> Ty.width ty
          | None -> 1
        in
        let i = fresh_slot w in
        Hashtbl.replace slot_of name i;
        i
  in
  Hashtbl.iter (fun name _ -> ignore (slot name)) p.Prep.env;
  (* Provenance: every pushed proto is tagged with the root statement
     currently being linearized ([cur_root]), and each root records which
     slot carries its final value ([root_slot]). *)
  let cur_root = ref "$unattributed" in
  let proots : string list ref = ref [] in
  let root_slot : (string, int) Hashtbl.t = Hashtbl.create 256 in
  (* linearize expression trees into three-address proto-instructions *)
  let protos : (int * int list * ppins) list ref = ref [] in
  let presets : (int * Bv.t) list ref = ref [] in
  let push pdst pdeps pp =
    protos := (pdst, pdeps, pp) :: !protos;
    proots := !cur_root :: !proots
  in
  let rec lin (e : Expr.t) : int =
    match e with
    | Expr.Ref n -> slot n
    | Expr.UIntLit v | Expr.SIntLit v ->
        let s = fresh_slot (Bv.width v) in
        presets := (s, v) :: !presets;
        s
    | _ ->
        let s = fresh_slot (Ty.width (Expr.type_of ty_of e)) in
        lin_into s e;
        s
  and lin_into (dst : int) (e : Expr.t) : unit =
    match e with
    | Expr.Ref n ->
        let s = slot n in
        push dst [ s ] (QIns (PCopy s))
    | Expr.UIntLit v | Expr.SIntLit v -> presets := (dst, v) :: !presets
    | Expr.Mux (sel, a, b) ->
        let ss = lin sel in
        let sa = lin a in
        let sb = lin b in
        push dst [ ss; sa; sb ] (QIns (PMux (ss, sa, sb)))
    | Expr.Unop (op, a) ->
        let ta = Expr.type_of ty_of a in
        let sa = lin a in
        push dst [ sa ] (QIns (PUnop (op, ta, sa)))
    | Expr.Binop (op, a, b) ->
        let ta = Expr.type_of ty_of a and tb = Expr.type_of ty_of b in
        let sa = lin a in
        let sb = lin b in
        push dst [ sa; sb ] (QIns (PBinop (op, ta, tb, sa, sb)))
    | Expr.Intop (op, n, a) ->
        let ta = Expr.type_of ty_of a in
        let sa = lin a in
        push dst [ sa ] (QIns (PIntop (op, n, ta, sa)))
    | Expr.Bits (a, hi, lo) ->
        let sa = lin a in
        push dst [ sa ] (QIns (PBits (hi, lo, sa)))
  in
  (* combinational producers: nodes, driven non-state sinks, comb mem reads.
     Registers and sync-read data ports are state, updated at the edge. *)
  let reg_names = Prep.reg_name_set p in
  let sync_data = Prep.sync_read_data_names p in
  let named_root name =
    cur_root := name;
    let s = slot name in
    Hashtbl.replace root_slot name s;
    s
  in
  Hashtbl.iter (fun name e -> lin_into (named_root name) e) p.Prep.node_defs;
  Hashtbl.iter
    (fun name e ->
      if not (Hashtbl.mem reg_names name || Hashtbl.mem sync_data name) then
        lin_into (named_root name) e)
    p.Prep.drivers;
  List.iter
    (fun (mname, (ms : Prep.mem_state)) ->
      if ms.Prep.mem.Stmt.mem_read_latency = 0 then
        List.iter
          (fun { Stmt.rp_name } ->
            let ai = slot (mname ^ "." ^ rp_name ^ ".addr") in
            let di = named_root (mname ^ "." ^ rp_name ^ ".data") in
            push di [ ai ] (QMemRead (mname, ai)))
          ms.Prep.mem.Stmt.mem_readers)
    p.Prep.mems;
  (* covers, cover-values, stops, prints and register next-values all read
     slots; their expressions join the tape like any other *)
  let lin_root n e =
    cur_root := n;
    let s = lin e in
    Hashtbl.replace root_slot n s;
    s
  in
  let cover_names = Array.of_list (List.map fst p.Prep.covers) in
  let cover_slots = Array.of_list (List.map (fun (n, e) -> lin_root n e) p.Prep.covers) in
  let cv_names = Array.of_list (List.map (fun (n, _, _, _) -> n) p.Prep.cover_values) in
  let cv_sig =
    Array.of_list (List.map (fun (n, s, _, _) -> lin_root n s) p.Prep.cover_values)
  in
  let cv_en =
    Array.of_list
      (List.map
         (fun (n, _, en, _) ->
           cur_root := n;
           lin en)
         p.Prep.cover_values)
  in
  let cv_widths =
    Array.of_list (List.map (fun (_, _, _, w) -> w) p.Prep.cover_values)
  in
  let stop_slots = Array.of_list (List.map (fun (n, e) -> lin_root n e) p.Prep.stops) in
  cur_root := "$print";
  let print_conds = Array.of_list (List.map (fun (c, _, _) -> lin c) p.Prep.prints) in
  let print_msgs = Array.of_list (List.map (fun (_, m, _) -> m) p.Prep.prints) in
  let print_args =
    Array.of_list
      (List.map (fun (_, _, args) -> Array.of_list (List.map lin args)) p.Prep.prints)
  in
  let reg_list =
    List.map
      (fun (r : Prep.reg_info) ->
        let n = r.Prep.reg_name in
        cur_root := n;
        let base =
          match Hashtbl.find_opt p.Prep.drivers n with
          | Some e -> lin e
          | None -> slot n (* undriven register holds its value *)
        in
        let src =
          match r.Prep.reset with
          | Some (rst, init) ->
              let srst = lin rst in
              let sinit = lin init in
              let sdst = fresh_slot (Ty.width r.Prep.reg_ty) in
              push sdst [ srst; sinit; base ] (QIns (PMux (srst, sinit, base)));
              sdst
          | None -> base
        in
        Hashtbl.replace root_slot n src;
        (slot n, src, Ty.width r.Prep.reg_ty))
      p.Prep.regs
  in
  (* memory metadata: port slots and the power-on image ($readmemh) *)
  let mem_index : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let mems =
    Array.of_list
      (List.mapi
         (fun mi (mname, (ms : Prep.mem_state)) ->
           let md = ms.Prep.mem in
           let field port f = slot (mname ^ "." ^ port ^ "." ^ f) in
           let wps = md.Stmt.mem_writers in
           let srs =
             if md.Stmt.mem_read_latency > 0 then md.Stmt.mem_readers else []
           in
           Hashtbl.replace mem_index mname mi;
           {
             mem_name = mname;
             m_width = Ty.width md.Stmt.mem_data;
             m_depth = md.Stmt.mem_depth;
             m_init = ms.Prep.data;
             wp_en = Array.of_list (List.map (fun { Stmt.wp_name } -> field wp_name "en") wps);
             wp_addr =
               Array.of_list (List.map (fun { Stmt.wp_name } -> field wp_name "addr") wps);
             wp_data =
               Array.of_list (List.map (fun { Stmt.wp_name } -> field wp_name "data") wps);
             sr_addr =
               Array.of_list (List.map (fun { Stmt.rp_name } -> field rp_name "addr") srs);
             sr_data =
               Array.of_list (List.map (fun { Stmt.rp_name } -> field rp_name "data") srs);
             comb_readers = [||];
           })
         p.Prep.mems)
  in
  let protos_arr =
    Array.of_list
      (List.rev_map
         (fun (pdst, pdeps, pp) ->
           let pins =
             match pp with
             | QIns i -> i
             | QMemRead (mname, ai) -> PMemRead (Hashtbl.find mem_index mname, ai)
           in
           { pdst; pdeps; pins })
         !protos)
  in
  let proots_arr = Array.of_list (List.rev !proots) in
  let nslots = !n_slots in
  (* copy elimination: a width-preserving [PCopy] aliases its destination
     slot to the source and disappears from the tape; every later slot
     reference (operands, covers, registers, memory ports, peeks) resolves
     through the alias map. A cycle of copies is a combinational loop. *)
  let wof s =
    match Hashtbl.find_opt width_of_slot s with Some w -> w | None -> 1
  in
  let alias = Array.init nslots (fun i -> i) in
  Array.iter
    (fun pr ->
      match pr.pins with
      | PCopy s when wof pr.pdst = wof s -> alias.(pr.pdst) <- s
      | _ -> ())
    protos_arr;
  let resolve s0 =
    let s = ref s0 and steps = ref 0 in
    while alias.(!s) <> !s do
      s := alias.(!s);
      incr steps;
      if !steps > nslots then
        Backend.error "combinational loop in circuit %s" c.Circuit.circuit_name
    done;
    alias.(s0) <- !s;
    !s
  in
  let kept =
    List.filter_map
      (fun (pr, root) ->
        if alias.(pr.pdst) <> pr.pdst then None
        else
          let pins =
            match pr.pins with
            | PCopy s -> PCopy (resolve s)
            | PMux (ss, sa, sb) -> PMux (resolve ss, resolve sa, resolve sb)
            | PUnop (op, ta, sa) -> PUnop (op, ta, resolve sa)
            | PBinop (op, ta, tb, sa, sb) ->
                PBinop (op, ta, tb, resolve sa, resolve sb)
            | PIntop (op, n, ta, sa) -> PIntop (op, n, ta, resolve sa)
            | PBits (hi, lo, sa) -> PBits (hi, lo, resolve sa)
            | PMemRead (m, sa) -> PMemRead (m, resolve sa)
          in
          Some ({ pr with pdeps = List.map resolve pr.pdeps; pins }, root))
      (List.combine (Array.to_list protos_arr) (Array.to_list proots_arr))
  in
  let protos_arr = Array.of_list (List.map fst kept) in
  let proots_arr = Array.of_list (List.map snd kept) in
  let cover_slots = Array.map resolve cover_slots in
  let cv_sig = Array.map resolve cv_sig in
  let cv_en = Array.map resolve cv_en in
  let stop_slots = Array.map resolve stop_slots in
  let print_conds = Array.map resolve print_conds in
  let print_args = Array.map (Array.map resolve) print_args in
  let reg_list = List.map (fun (d, s, w) -> (d, resolve s, w)) reg_list in
  Array.iter
    (fun m ->
      let ip a = Array.iteri (fun i s -> a.(i) <- resolve s) a in
      ip m.wp_en;
      ip m.wp_addr;
      ip m.wp_data;
      ip m.sr_addr)
    mems;
  Hashtbl.fold (fun n s acc -> (n, s) :: acc) root_slot []
  |> List.iter (fun (n, s) -> Hashtbl.replace root_slot n (resolve s));
  (* fully compress so runtime reads are single-level *)
  for s = 0 to nslots - 1 do
    alias.(s) <- resolve s
  done;
  (* topological sort (Kahn) over proto-instructions *)
  let np = Array.length protos_arr in
  let producer = Array.make nslots (-1) in
  Array.iteri
    (fun i pr ->
      if producer.(pr.pdst) >= 0 then
        Backend.error "combinational loop in circuit %s" c.Circuit.circuit_name;
      producer.(pr.pdst) <- i)
    protos_arr;
  let indeg = Array.make np 0 in
  let dependents = Array.make np [] in
  Array.iteri
    (fun i pr ->
      List.iter
        (fun s ->
          let d = producer.(s) in
          if d >= 0 then begin
            indeg.(i) <- indeg.(i) + 1;
            dependents.(d) <- i :: dependents.(d)
          end)
        pr.pdeps)
    protos_arr;
  let queue = Queue.create () in
  for i = 0 to np - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = Array.make np (-1) in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!emitted) <- i;
    incr emitted;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d queue)
      dependents.(i)
  done;
  if !emitted <> np then
    Backend.error "combinational loop in circuit %s" c.Circuit.circuit_name;
  let widths = Array.make nslots 0 in
  Hashtbl.iter (fun s w -> widths.(s) <- w) width_of_slot;
  (* emit in topological order; memory comb-reader indices are positions
     in the final tape *)
  let protos_topo = Array.map (fun oi -> protos_arr.(oi)) order in
  let roots_topo = Array.map (fun oi -> proots_arr.(oi)) order in
  let mems =
    Array.mapi
      (fun mi0 m ->
        let readers = ref [] in
        Array.iteri
          (fun k pr ->
            match pr.pins with
            | PMemRead (mi, _) when mi = mi0 -> readers := k :: !readers
            | _ -> ())
          protos_topo;
        { m with comb_readers = Array.of_list (List.rev !readers) })
      mems
  in
  {
    p;
    slot_of;
    alias;
    widths;
    presets = !presets;
    protos = protos_topo;
    roots = roots_topo;
    root_slot;
    cover_names;
    cover_slots;
    cv_names;
    cv_sig;
    cv_en;
    cv_widths;
    stop_slots;
    print_conds;
    print_msgs;
    print_args;
    regs = Array.of_list reg_list;
    mems;
    builtin_db;
  }
