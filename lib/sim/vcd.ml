(** Minimal VCD (Value Change Dump) writer and reader.

    The evaluation methodology of §5.1 records a waveform from a real test
    run, then replays only the top-level inputs through a minimal
    testbench, isolating raw simulator time from stimulus generation. The
    writer emits a standard-enough subset (timescale, scope, [$var wire]
    declarations, binary value changes); the reader parses the same subset
    back into per-cycle input assignments. *)

module Bv = Sic_bv.Bv

type var = { var_name : string; var_width : int; code : string }

(* printable VCD id codes: ! .. ~ in as many digits as needed *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let d = Char.chr (first + (i mod base)) in
    let acc = String.make 1 d ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

(** {1 Writer} *)

type writer = {
  oc : out_channel;
  vars : var list;
  mutable last : (string * Bv.t) list;  (** last dumped value per var name *)
  mutable time : int;
}

let create_writer oc ~scope (signals : (string * int) list) : writer =
  output_string oc "$date today $end\n$version sic $end\n$timescale 1ns $end\n";
  Printf.fprintf oc "$scope module %s $end\n" scope;
  let vars =
    List.mapi
      (fun i (var_name, var_width) ->
        let code = code_of_index i in
        Printf.fprintf oc "$var wire %d %s %s $end\n" var_width code var_name;
        { var_name; var_width; code })
      signals
  in
  output_string oc "$upscope $end\n$enddefinitions $end\n";
  { oc; vars; last = []; time = 0 }

let dump_value w (v : var) (value : Bv.t) =
  if v.var_width = 1 then
    Printf.fprintf w.oc "%c%s\n" (if Bv.to_bool value then '1' else '0') v.code
  else Printf.fprintf w.oc "b%s %s\n" (Bv.to_binary_string value) v.code

(** Emit one sample; only changed values are dumped, as in real VCDs. *)
let sample (w : writer) (values : (string * Bv.t) list) =
  Printf.fprintf w.oc "#%d\n" w.time;
  List.iter
    (fun v ->
      match List.assoc_opt v.var_name values with
      | None -> ()
      | Some value ->
          let is_new =
            match List.assoc_opt v.var_name w.last with
            | None -> true
            | Some old -> not (Bv.equal_value old value)
          in
          if is_new then begin
            dump_value w v value;
            w.last <- (v.var_name, value) :: List.remove_assoc v.var_name w.last
          end)
    w.vars;
  w.time <- w.time + 1

(** {1 Reader} *)

type wave = {
  signals : (string * int) list;
  frames : (string * Bv.t) list array;  (** complete assignment per cycle *)
}

exception Vcd_error of string

let read_string (s : string) : wave =
  let lines = String.split_on_char '\n' s in
  let vars = Hashtbl.create 16 in
  (* code -> (name, width) *)
  let order = ref [] in
  let current = Hashtbl.create 16 in
  (* name -> Bv *)
  let frames = ref [] in
  let started = ref false in
  let flush_frame () =
    if !started then
      frames := Hashtbl.fold (fun k v acc -> (k, v) :: acc) current [] :: !frames
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "$var" then begin
        match String.split_on_char ' ' line with
        | "$var" :: _kind :: width :: code :: name :: _ ->
            let w = int_of_string width in
            Hashtbl.replace vars code (name, w);
            order := (name, w) :: !order;
            Hashtbl.replace current name (Bv.zero w)
        | _ -> raise (Vcd_error line)
      end
      else if line.[0] = '$' then ()
      else if line.[0] = '#' then begin
        flush_frame ();
        started := true
      end
      else if line.[0] = 'b' then begin
        match String.index_opt line ' ' with
        | None -> raise (Vcd_error line)
        | Some i ->
            let bits = String.sub line 1 (i - 1) in
            let code = String.sub line (i + 1) (String.length line - i - 1) in
            let name, w = Hashtbl.find vars code in
            Hashtbl.replace current name (Bv.extend_u (Bv.of_binary_string bits) w)
      end
      else if line.[0] = '0' || line.[0] = '1' then begin
        let code = String.sub line 1 (String.length line - 1) in
        let name, w = Hashtbl.find vars code in
        Hashtbl.replace current name
          (Bv.extend_u (Bv.of_bool (line.[0] = '1')) w)
      end
      else ())
    lines;
  flush_frame ();
  { signals = List.rev !order; frames = Array.of_list (List.rev !frames) }

let read_file path : wave =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_string (really_input_string ic (in_channel_length ic)))
