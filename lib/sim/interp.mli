(** Tree-walking IR interpreter — the Treadle analogue (§3.1): instant
    start-up, reference semantics, native support for [cover],
    [cover-values] and [stop]. Lazily evaluates signals per cycle with
    memoization and detects combinational loops at evaluation time. *)

val create : Sic_ir.Circuit.t -> Backend.t
(** Accepts high-form circuits (lowers them internally) or low-form
    circuits (used as-is). *)
