(** Tree-walking IR interpreter — the Treadle analogue: instant start-up,
    no compilation step, reference semantics. Values are computed lazily
    per cycle with memoization; combinational loops are detected. The
    cover primitive is implemented exactly as §3.1 describes for Treadle:
    like a [stop] whose condition, instead of ending the simulation,
    increments a counter. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Prep = Backend.Prep

type state = {
  p : Prep.prepared;
  ty_of : string -> Ty.t;
  inputs : (string, Bv.t) Hashtbl.t;
  mutable reg_values : (string, Bv.t) Hashtbl.t;
  memo : (string, Bv.t) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
  value_counters : (string, int array) Hashtbl.t;  (** cover-values arrays *)
  mutable cycle : int;
  mutable stopped : bool;
}

let rec value (s : state) (name : string) : Bv.t =
  match Hashtbl.find_opt s.memo name with
  | Some v -> v
  | None ->
      if Hashtbl.mem s.in_progress name then
        Backend.error "combinational loop through %s" name;
      Hashtbl.replace s.in_progress name ();
      let v = compute s name in
      Hashtbl.remove s.in_progress name;
      Hashtbl.replace s.memo name v;
      v

and compute (s : state) (name : string) : Bv.t =
  match Hashtbl.find_opt s.inputs name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt s.reg_values name with
      | Some v -> v
      | None -> (
          (* memory read-port data? *)
          match mem_read_value s name with
          | Some v -> v
          | None -> (
              match Hashtbl.find_opt s.p.Prep.node_defs name with
              | Some e -> eval s e
              | None -> (
                  match Hashtbl.find_opt s.p.Prep.drivers name with
                  | Some e -> eval s e
                  | None ->
                      (* undriven wire or input left unpoked: zero *)
                      Bv.zero (Ty.width (s.ty_of name))))))

and mem_read_value (s : state) (name : string) : Bv.t option =
  let find () =
    List.find_map
      (fun (mname, ms) ->
        List.find_map
          (fun { Stmt.rp_name } ->
            if String.equal name (mname ^ "." ^ rp_name ^ ".data") then Some (mname, ms, rp_name)
            else None)
          ms.Prep.mem.Stmt.mem_readers)
      s.p.Prep.mems
  in
  match find () with
  | None -> None
  | Some (mname, ms, rp) ->
      let addr =
        if ms.Prep.mem.Stmt.mem_read_latency > 0 then List.assoc rp ms.Prep.latched_addrs
        else value s (mname ^ "." ^ rp ^ ".addr")
      in
      let i = Bv.to_int_trunc addr in
      if i < Array.length ms.Prep.data then Some ms.Prep.data.(i)
      else Some (Bv.zero (Ty.width ms.Prep.mem.Stmt.mem_data))

and eval (s : state) (e : Expr.t) : Bv.t =
  Eval.eval ~ty_of:s.ty_of ~value_of:(fun n -> value s n) e

let invalidate (s : state) =
  Hashtbl.reset s.memo;
  Hashtbl.reset s.in_progress

let clock_edge (s : state) =
  (* 1. sample covers / cover-values / stops with pre-edge values *)
  List.iter
    (fun (name, pred) ->
      if Bv.to_bool (eval s pred) then
        Hashtbl.replace s.counters name
          (Backend.sat_incr (Option.value ~default:0 (Hashtbl.find_opt s.counters name))))
    s.p.Prep.covers;
  List.iter
    (fun (name, signal, en, _w) ->
      if Bv.to_bool (eval s en) then begin
        let arr = Hashtbl.find s.value_counters name in
        let v = Bv.to_int_trunc (eval s signal) in
        if v < Array.length arr then arr.(v) <- Backend.sat_incr arr.(v)
      end)
    s.p.Prep.cover_values;
  List.iter
    (fun (_name, cond) -> if Bv.to_bool (eval s cond) then s.stopped <- true)
    s.p.Prep.stops;
  List.iter
    (fun (cond, message, args) ->
      if Bv.to_bool (eval s cond) then
        !Backend.print_sink (Prep.format_print message (List.map (eval s) args)))
    s.p.Prep.prints;
  (* 2. compute register next-values (pre-edge) *)
  let next =
    List.map
      (fun (r : Prep.reg_info) ->
        let n = r.Prep.reg_name in
        let base =
          match Hashtbl.find_opt s.p.Prep.drivers n with
          | Some e -> eval s e
          | None -> value s n
        in
        let v =
          match r.Prep.reset with
          | Some (rst, init) -> if Bv.to_bool (eval s rst) then eval s init else base
          | None -> base
        in
        (n, v))
      s.p.Prep.regs
  in
  (* 3. memory writes and sync-read address latching (pre-edge values) *)
  let mem_updates =
    List.map
      (fun (mname, ms) ->
        let writes =
          List.filter_map
            (fun { Stmt.wp_name } ->
              let en = value s (mname ^ "." ^ wp_name ^ ".en") in
              if Bv.to_bool en then
                Some
                  ( Bv.to_int_trunc (value s (mname ^ "." ^ wp_name ^ ".addr")),
                    value s (mname ^ "." ^ wp_name ^ ".data") )
              else None)
            ms.Prep.mem.Stmt.mem_writers
        in
        let latched =
          List.map
            (fun (rp, _) -> (rp, value s (mname ^ "." ^ rp ^ ".addr")))
            ms.Prep.latched_addrs
        in
        (ms, writes, latched))
      s.p.Prep.mems
  in
  (* 4. commit *)
  List.iter (fun (n, v) -> Hashtbl.replace s.reg_values n v) next;
  List.iter
    (fun (ms, writes, latched) ->
      List.iter
        (fun (addr, data) -> if addr < Array.length ms.Prep.data then ms.Prep.data.(addr) <- data)
        writes;
      ms.Prep.latched_addrs <- latched)
    mem_updates;
  invalidate s;
  s.cycle <- s.cycle + 1

let create (c : Circuit.t) : Backend.t =
  let p = Prep.prepare c in
  let ty_of = Circuit.lookup_of p.Prep.env in
  let s =
    {
      p;
      ty_of;
      inputs = Hashtbl.create 16;
      reg_values = Hashtbl.create 64;
      memo = Hashtbl.create 256;
      in_progress = Hashtbl.create 256;
      counters = Hashtbl.create 64;
      value_counters = Hashtbl.create 4;
      cycle = 0;
      stopped = false;
    }
  in
  (* registers power on to zero; reset is the designer's responsibility *)
  List.iter
    (fun (r : Prep.reg_info) ->
      Hashtbl.replace s.reg_values r.Prep.reg_name (Bv.zero (Ty.width r.Prep.reg_ty)))
    p.Prep.regs;
  List.iter
    (fun (name, _) -> Hashtbl.replace s.counters name 0)
    p.Prep.covers;
  List.iter
    (fun (name, _, _, w) ->
      Hashtbl.replace s.value_counters name (Array.make (1 lsl min w 20) 0))
    p.Prep.cover_values;
  Backend.with_telemetry
  {
    Backend.backend_name = "interp";
    circuit = p.Prep.low;
    poke =
      (fun name v ->
        match Hashtbl.find_opt p.Prep.input_names name with
        | None -> Backend.error "poke: %s is not an input" name
        | Some w ->
            Hashtbl.replace s.inputs name (Bv.extend_u v w);
            invalidate s);
    peek = (fun name -> value s name);
    step =
      (fun n ->
        for _ = 1 to n do
          clock_edge s
        done);
    counts =
      (fun () ->
        let out = Counts.create () in
        Hashtbl.iter (fun k v -> Counts.set out k v) s.counters;
        Hashtbl.iter
          (fun k arr ->
            Array.iteri
              (fun v c -> Counts.set out (Sic_coverage.Cover_values.value_key k v) c)
              arr)
          s.value_counters;
        out);
    cycles = (fun () -> s.cycle);
    finished = (fun () -> s.stopped);
  }
