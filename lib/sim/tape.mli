(** The shared flat tape: the pure-data front half of building a
    word-level simulator. A lowered circuit is flattened into slots and a
    topologically-sorted array of {e proto-instructions} — three-address
    code with resolved slot indices, operand types, and provenance, but
    no decision yet about value representation. {!Compiled} decodes it
    into the scalar int/Bv engine; {!Lanes} decodes the very same tape
    into the bit-parallel multi-seed engine. Copy elimination, the alias
    map, cover/stop/print/register/memory metadata and the Kahn sort all
    live here so every consumer agrees on the tape, which is what makes
    the engines' value streams (and hence coverage counts) comparable
    instruction by instruction. *)

module Prep = Backend.Prep

(** Proto-instructions: pure data produced by linearization. Slot widths
    (and each engine's storage classes) decide the execution strategy. *)
type pins =
  | PCopy of int
  | PMux of int * int * int  (** sel, then, else *)
  | PUnop of Sic_ir.Expr.unop * Sic_ir.Ty.t * int
  | PBinop of Sic_ir.Expr.binop * Sic_ir.Ty.t * Sic_ir.Ty.t * int * int
  | PIntop of Sic_ir.Expr.intop * int * Sic_ir.Ty.t * int
  | PBits of int * int * int  (** hi, lo, src *)
  | PMemRead of int * int  (** memory index (into {!t.mems}), addr slot *)

type proto = { pdst : int; pdeps : int list; pins : pins }

(** Per-memory metadata: port slots plus the power-on image. Consumers
    build their own runtime store from [m_init]. *)
type mem = {
  mem_name : string;
  m_width : int;
  m_depth : int;
  m_init : Sic_bv.Bv.t array;
  wp_en : int array;
  wp_addr : int array;
  wp_data : int array;
  sr_addr : int array;  (** sync read ports: addr slot *)
  sr_data : int array;  (** sync read ports: data slot (state) *)
  comb_readers : int array;
      (** tape indices of combinational reads (latency-0 ports) *)
}

type t = {
  p : Prep.prepared;
  slot_of : (string, int) Hashtbl.t;
  alias : int array;  (** copy-eliminated slot -> representative (compressed) *)
  widths : int array;  (** per slot *)
  presets : (int * Sic_bv.Bv.t) list;  (** literal slots and their values *)
  protos : proto array;  (** the tape, already topologically ordered *)
  roots : string array;  (** per tape index: originating statement name *)
  root_slot : (string, int) Hashtbl.t;
      (** statement name -> (resolved) slot carrying its final value *)
  cover_names : string array;
  cover_slots : int array;
  cv_names : string array;
  cv_sig : int array;
  cv_en : int array;
  cv_widths : int array;
  stop_slots : int array;
  print_conds : int array;
  print_msgs : string array;
  print_args : int array array;
  regs : (int * int * int) array;  (** dst slot, next-value slot, width *)
  mems : mem array;
  builtin_db : Sic_coverage.Line_coverage.db option;
}

val build : ?builtin_line:bool -> Sic_ir.Circuit.t -> t
(** Flatten, linearize, copy-eliminate and topologically sort a lowered
    circuit. [~builtin_line:true] runs the internal line instrumentation
    first (requires a high-form circuit); the resulting database is
    exposed as [builtin_db]. Raises {!Backend.Sim_error} on
    combinational loops. *)
