(** Compiled simulator — the Verilator analogue, built around a
    {e word-level engine}. {!Tape.build} flattens the lowered circuit
    into slots and a topologically-sorted {e instruction tape} of
    proto-instructions; this module decodes them for scalar execution:

    - every named signal (and every temporary produced by linearizing an
      expression tree into three-address form) gets a slot; slots of width
      [<= 62] live in an unboxed [int array] holding the signal's bit
      pattern masked to its width (signed operators sign-extend on read),
      wider slots fall back to a [Bv.t array];
    - each combinational update is one entry of a flat variant array with
      pre-resolved slot indices and operator metadata, executed by a tight
      match loop (see {!Eval.Int} for the operator semantics). On the
      int-only path a simulation cycle performs {e no heap allocation};
      instructions touching wide slots drop to a boxed closure over
      {!Eval}'s [Bv] semantics.

    [~activity:true] turns on ESSENT-style conditional evaluation
    ({!Essent} is a thin wrapper): per-instruction dirty flags driven by
    pre-computed reader index lists — an instruction re-runs only when one
    of its input slots actually changed, exploiting low activity factors.

    [~builtin_line:true] reproduces a simulator with {e hard-coded} line
    coverage (Verilator's built-in [--coverage-line]): the same
    {!Sic_coverage.Line_coverage.instrument} pass is performed internally
    by the simulator rather than in the user-visible pass pipeline, so its
    counters keep the usual [l_*] names — they {e are} the same
    instrumentation, performed internally, which is the paper's §6/Fig. 8
    explanation for why built-in and pass-based overheads match. The
    internal instrumentation database is exposed via {!line_db}. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Obs = Sic_obs.Obs
module Prep = Backend.Prep

(* Flat tape instructions, fully decoded at build time: slot indices are
   pre-resolved, operand signedness is folded into a sign-extension shift
   count (0 for unsigned operands — [(x lsl 0) asr 0] is the identity), and
   all width arithmetic is gone; the execution loop masks every result to
   the destination width. Int variants read/write the unboxed array only;
   [IBitsW] is the no-allocation narrow-extract-from-wide fast path and
   [IBox] the general wide-signal fallback. *)
type ins =
  | ICopy of int
  | IMux of int * int * int  (** sel, then, else *)
  | INot of int
  | IAndr of int * int  (** full mask of the operand width, src *)
  | IOrr of int
  | IXorr of int
  | INeg of int * int  (** sext shift, src *)
  | ISext of int * int  (** sext shift, src (signed widening Pad) *)
  | IShrC of int * int  (** constant logical right shift: Bits/Head/Shr *)
  | IShlC of int * int  (** constant left shift: Shl *)
  | IAdd of int * int * int * int  (** sha, a, shb, b *)
  | ISub of int * int * int * int
  | IMul of int * int * int * int
  | IDiv of int * int * int * int
  | IRem of int * int * int * int
  | ILt of int * int * int * int
  | ILeq of int * int * int * int
  | IGt of int * int * int * int
  | IGeq of int * int * int * int
  | IEq of int * int * int * int
  | INeq of int * int * int * int
  | IAnd of int * int * int * int
  | IOr of int * int * int * int
  | IXor of int * int * int * int
  | ICat of int * int * int  (** a, width of b, b *)
  | IDshl of int * int * int * int  (** sha, a, result width, shift slot *)
  | IDshr of int * int * int  (** sha, a, shift slot *)
  | IBitsW of int * int * int  (** lo, field width, wide src *)
  | IOrrW of int  (** Orr of a wide operand into a 1-bit slot *)
  | IAndrW of int * int  (** operand width, wide src *)
  | IXorrW of int
  | IMemRead of int array * int  (** memory data, addr slot *)
  (* Wide-destination in-place instructions: each mutates the destination
     slot's privately-owned [Bv.t] buffer and allocates nothing. Decoded
     only for the shapes real designs produce in bulk (wide muxes and
     logic, the 1-bit-at-a-time Cat chains Chisel emits for vector
     aggregation, one-hot [Dshl], unsigned wide [Dshr]). *)
  | WMux of int * int * int  (** sel, then, else (arms at dst width) *)
  | WCat of int * int * int  (** a, b, width of b *)
  | WDshl of int * int  (** unsigned narrow a, narrow shift slot *)
  | WDshr of int * int  (** unsigned wide a, narrow shift slot *)
  | WOr of int * int
  | WAnd of int * int
  | WXor of int * int
  | IBox of (unit -> Bv.t)  (** boxed fallback (some slot is wide) *)

(* Mnemonic per decoded instruction, for profile rows. *)
let op_name = function
  | ICopy _ -> "copy" | IMux _ -> "mux" | INot _ -> "not" | IAndr _ -> "andr"
  | IOrr _ -> "orr" | IXorr _ -> "xorr" | INeg _ -> "neg" | ISext _ -> "sext"
  | IShrC _ -> "shr" | IShlC _ -> "shl" | IAdd _ -> "add" | ISub _ -> "sub"
  | IMul _ -> "mul" | IDiv _ -> "div" | IRem _ -> "rem" | ILt _ -> "lt"
  | ILeq _ -> "leq" | IGt _ -> "gt" | IGeq _ -> "geq" | IEq _ -> "eq"
  | INeq _ -> "neq" | IAnd _ -> "and" | IOr _ -> "or" | IXor _ -> "xor"
  | ICat _ -> "cat" | IDshl _ -> "dshl" | IDshr _ -> "dshr" | IBitsW _ -> "bitsw"
  | IOrrW _ -> "orrw" | IAndrW _ -> "andrw" | IXorrW _ -> "xorrw"
  | IMemRead _ -> "memread" | WMux _ -> "wmux" | WCat _ -> "wcat"
  | WDshl _ -> "wdshl" | WDshr _ -> "wdshr" | WOr _ -> "wor" | WAnd _ -> "wand"
  | WXor _ -> "wxor" | IBox _ -> "box"

(* Engine profiler state (see {!Profile}): per-tape-index counters plus the
   static provenance computed at build time. [ph_hits] counts
   {e value-changing} evaluations — a property of the value stream, so it
   is identical across the plain and activity schedulers (and matches
   {!Ref_tape}'s), which is what makes the exported artifact
   byte-deterministic. [ph_exec] counts actual executions — the dirty-flag
   scheduler's re-evals (profiled builds always run the activity
   schedule) — a live-only diagnostic excluded from the artifact, because
   re-eval counts legitimately differ between engines: a linearized temp
   can absorb an input change without the root instruction re-running,
   while a whole-expression engine re-evaluates. *)
type prof = {
  ph_hits : int array;
  ph_time : int array;  (** accumulated sampled self-time, ns *)
  ph_exec : int array;  (** dirty-flag scheduler re-evaluation counts *)
  ph_every : int;  (** sample timings every Nth [run_tape]; 0 = counts only *)
  ph_cal : int;  (** calibrated fixed cost of one clock pair, ns *)
  mutable ph_runs : int;
  ph_roots : string array;  (** per tape index: originating statement name *)
  ph_is_root : bool array;  (** produces the root statement's own value *)
  ph_ops : string array;
  ph_wscr : Bv.t array;
      (** per tape index: pre-allocated old-value scratch for wide
          in-place change detection (width-1 dummy elsewhere), so the
          profiled loops stay allocation-free *)
}

(** [Sampled n] also samples per-instruction wall time every [n]th
    [run_tape]; [Counts_only] (fleet workers, differential tests) keeps
    only the deterministic hit counts. *)
type profile_mode = Counts_only | Sampled of int

type mem_store = M_int of int array | M_bv of Bv.t array

type wmem = {
  m_width : int;
  m_zero : Bv.t;
  store : mem_store;
  wp_en : int array;
  wp_addr : int array;
  wp_data : int array;
  sr_addr : int array;  (** sync read ports: addr slot *)
  sr_data : int array;  (** sync read ports: data slot (state) *)
  comb_readers : int array;
      (** tape indices of combinational reads, re-dirtied on write *)
}

type t = {
  p : Prep.prepared;
  slot_of : (string, int) Hashtbl.t;
  alias : int array;  (** copy-eliminated slot -> representative *)
  widths : int array;  (** per slot *)
  wide : bool array;  (** per slot: width > {!Eval.Int.max_width} *)
  ivals : int array;  (** narrow slots: masked bit patterns *)
  bvals : Bv.t array;  (** wide slots *)
  ins : ins array;
  dsts : int array;  (** per tape index: destination slot *)
  masks : int array;  (** per tape index: mask of the destination width *)
  slot_readers : int array array;  (** slot -> tape indices reading it *)
  dirty : bool array;  (** per tape index (activity mode) *)
  cover_names : string array;
  cover_slots : int array;
  counters : int array;
  cv_names : string array;
  cv_sig : int array;
  cv_en : int array;
  cv_arr : int array array;
  stop_slots : int array;
  print_conds : int array;
  print_msgs : string array;
  print_args : int array array;
  ri_dst : int array;  (** narrow registers: slot *)
  ri_src : int array;  (** narrow registers: next-value slot *)
  ri_scratch : int array;
  rb_dst : int array;  (** wide registers *)
  rb_src : int array;
  rb_scratch : Bv.t array;
  mems : wmem array;
  builtin_db : Sic_coverage.Line_coverage.db option;
  prof : prof option;
  activity : bool;
  mutable tape_dirty : bool;
  mutable cycle : int;
  mutable stopped : bool;
}

let read_slot_int (t : t) s =
  if t.wide.(s) then Bv.to_int_trunc t.bvals.(s) else t.ivals.(s)

let read_slot_bool (t : t) s =
  if t.wide.(s) then not (Bv.is_zero t.bvals.(s)) else t.ivals.(s) <> 0

(* Allocates for narrow slots; only used off the per-cycle path (peek,
   print formatting). *)
let read_slot_bv (t : t) s =
  if t.wide.(s) then t.bvals.(s)
  else Bv.of_int62 ~width:t.widths.(s) t.ivals.(s)

(* Like {!read_slot_bv} but never returns an engine-owned buffer: wide
   slots produced by in-place instructions are mutated every cycle, so any
   value that escapes the current tape run (peeks, register scratch,
   memory stores) must be a private copy. *)
let read_slot_bv_fresh (t : t) s =
  if t.wide.(s) then Bv.copy t.bvals.(s)
  else Bv.of_int62 ~width:t.widths.(s) t.ivals.(s)

let build ?(builtin_line = false) ?(activity = false) ?profile (c : Circuit.t) : t =
  (* Profiled builds always run the change-driven (activity) schedule:
     change detection is what that scheduler does anyway, so exact hit
     counts come at its marginal cost instead of adding a compare to the
     throughput loop — and the two schedules produce identical values, so
     forcing it is unobservable apart from timing. *)
  let activity = activity || profile <> None in
  let tp = Tape.build ~builtin_line c in
  let p = tp.Tape.p in
  let widths = tp.Tape.widths in
  let nslots = Array.length widths in
  let protos_arr = tp.Tape.protos in
  let np = Array.length protos_arr in
  (* slot metadata and value arrays *)
  let wide = Array.map (fun w -> not (Eval.Int.fits w)) widths in
  let ivals = Array.make nslots 0 in
  let bvals = Array.make nslots (Bv.zero 1) in
  for s = 0 to nslots - 1 do
    if wide.(s) then bvals.(s) <- Bv.zero widths.(s)
  done;
  List.iter
    (fun (s, v) ->
      if wide.(s) then bvals.(s) <- Bv.extend_u v widths.(s)
      else ivals.(s) <- Bv.to_int_trunc v land Eval.Int.mask widths.(s))
    tp.Tape.presets;
  (* memory runtime: narrow data lives in an int array *)
  let mems =
    Array.map
      (fun (m : Tape.mem) ->
        let store =
          (* the tape's init image already carries any power-on data *)
          if Eval.Int.fits m.Tape.m_width then
            M_int
              (Array.init m.Tape.m_depth (fun i -> Bv.to_int_trunc m.Tape.m_init.(i)))
          else M_bv (Array.init m.Tape.m_depth (fun i -> m.Tape.m_init.(i)))
        in
        {
          m_width = m.Tape.m_width;
          m_zero = Bv.zero m.Tape.m_width;
          store;
          wp_en = m.Tape.wp_en;
          wp_addr = m.Tape.wp_addr;
          wp_data = m.Tape.wp_data;
          sr_addr = m.Tape.sr_addr;
          sr_data = m.Tape.sr_data;
          comb_readers = m.Tape.comb_readers;
        })
      tp.Tape.mems
  in
  (* finalize the tape: decide int vs boxed per instruction, build the
     boxed closures now that the value arrays exist *)
  let narrow s = not wide.(s) in
  let rd s =
    if wide.(s) then bvals.(s) else Bv.of_int62 ~width:widths.(s) ivals.(s)
  in
  let rdb s = if wide.(s) then not (Bv.is_zero bvals.(s)) else ivals.(s) <> 0 in
  let ins = Array.make np (ICopy 0) in
  let dsts = Array.make np 0 in
  let masks = Array.make np 0 in
  (* sign-extension shift count for an operand read: 0 for unsigned
     operands, [(x lsl 0) asr 0] being the identity *)
  let sx ty = if Ty.is_signed ty then 63 - Ty.width ty else 0 in
  (* Boxed fallback. A closure may return one of its operands (identity
     pads, muxes, copies); if the destination is wide that object would be
     rebound into [bvals] — and were the operand an in-place instruction's
     buffer, later mutations would silently change this slot too and defeat
     activity-mode change detection. A copy keeps every boxed wide result
     privately owned. SIC_DEBUG_TAPE=1 prints what failed to decode. *)
  let dbg_tape = Sys.getenv_opt "SIC_DEBUG_TAPE" <> None in
  let boxed kind (pr : Tape.proto) f =
    if dbg_tape then
      Printf.eprintf "BOX %-8s dst_w=%d deps_w=[%s]\n" kind widths.(pr.Tape.pdst)
        (String.concat ";"
           (List.map (fun s -> string_of_int widths.(s)) pr.Tape.pdeps));
    if wide.(pr.Tape.pdst) then IBox (fun () -> Bv.copy (f ())) else IBox f
  in
  Array.iteri
    (fun k (pr : Tape.proto) ->
      dsts.(k) <- pr.Tape.pdst;
      masks.(k) <- Eval.Int.mask widths.(pr.Tape.pdst);
      ins.(k) <-
        (match pr.Tape.pins with
        | Tape.PCopy s ->
            if narrow pr.Tape.pdst && narrow s then ICopy s
            else boxed "copy" pr (fun () -> rd s)
        | Tape.PMux (ss, sa, sb) ->
            if narrow pr.Tape.pdst && narrow ss && narrow sa && narrow sb then
              IMux (ss, sa, sb)
            else if
              narrow ss && wide.(sa) && wide.(sb)
              && widths.(sa) = widths.(pr.Tape.pdst)
              && widths.(sb) = widths.(pr.Tape.pdst)
            then WMux (ss, sa, sb)
            else boxed "mux" pr (fun () -> if rdb ss then rd sa else rd sb)
        | Tape.PUnop (op, ta, sa) ->
            if narrow pr.Tape.pdst && narrow sa then begin
              let w = Ty.width ta in
              match op with
              | Expr.Not -> INot sa
              | Expr.Andr ->
                  (* zero-width reduction is constant false *)
                  if w = 0 then IShrC (62, sa) else IAndr (Eval.Int.mask w, sa)
              | Expr.Orr -> IOrr sa
              | Expr.Xorr -> IXorr sa
              | Expr.Neg -> INeg (sx ta, sa)
              | Expr.Cvt | Expr.AsUInt | Expr.AsSInt -> ICopy sa
            end
            else if narrow pr.Tape.pdst && wide.(sa) then begin
              match op with
              | Expr.Orr -> IOrrW sa
              | Expr.Andr -> IAndrW (Ty.width ta, sa)
              | Expr.Xorr -> IXorrW sa
              | _ -> boxed "unop" pr (fun () -> Eval.unop op ~ta (rd sa))
            end
            else boxed "unop" pr (fun () -> Eval.unop op ~ta (rd sa))
        | Tape.PBinop (op, ta, tb, sa, sb) ->
            if narrow pr.Tape.pdst && narrow sa && narrow sb then begin
              let sha = sx ta and shb = sx tb in
              match op with
              | Expr.Add -> IAdd (sha, sa, shb, sb)
              | Expr.Sub -> ISub (sha, sa, shb, sb)
              | Expr.Mul -> IMul (sha, sa, shb, sb)
              | Expr.Div -> IDiv (sha, sa, shb, sb)
              | Expr.Rem -> IRem (sha, sa, shb, sb)
              | Expr.Lt -> ILt (sha, sa, shb, sb)
              | Expr.Leq -> ILeq (sha, sa, shb, sb)
              | Expr.Gt -> IGt (sha, sa, shb, sb)
              | Expr.Geq -> IGeq (sha, sa, shb, sb)
              | Expr.Eq -> IEq (sha, sa, shb, sb)
              | Expr.Neq -> INeq (sha, sa, shb, sb)
              | Expr.And -> IAnd (sha, sa, shb, sb)
              | Expr.Or -> IOr (sha, sa, shb, sb)
              | Expr.Xor -> IXor (sha, sa, shb, sb)
              | Expr.Cat -> ICat (sa, Ty.width tb, sb)
              | Expr.Dshl ->
                  IDshl (sha, sa, Ty.width ta + (1 lsl Ty.width tb) - 1, sb)
              | Expr.Dshr -> IDshr (sha, sa, sb)
            end
            else begin
              let wd = widths.(pr.Tape.pdst) in
              let same_width = Ty.width ta = wd && Ty.width tb = wd in
              match op with
              | Expr.Cat when wide.(pr.Tape.pdst) -> WCat (sa, sb, Ty.width tb)
              | Expr.Or
                when wide.(pr.Tape.pdst) && wide.(sa) && wide.(sb)
                     && ((not (Ty.is_signed ta)) || same_width) -> WOr (sa, sb)
              | Expr.And
                when wide.(pr.Tape.pdst) && wide.(sa) && wide.(sb)
                     && ((not (Ty.is_signed ta)) || same_width) -> WAnd (sa, sb)
              | Expr.Xor
                when wide.(pr.Tape.pdst) && wide.(sa) && wide.(sb)
                     && ((not (Ty.is_signed ta)) || same_width) -> WXor (sa, sb)
              | Expr.Dshl
                when wide.(pr.Tape.pdst) && narrow sa && narrow sb
                     && not (Ty.is_signed ta) -> WDshl (sa, sb)
              | Expr.Dshr
                when wide.(pr.Tape.pdst) && wide.(sa) && narrow sb
                     && (not (Ty.is_signed ta)) && widths.(sa) = wd ->
                  WDshr (sa, sb)
              | _ ->
                  boxed
                    (match op with
                    | Expr.Add -> "Add" | Expr.Sub -> "Sub" | Expr.Mul -> "Mul"
                    | Expr.Div -> "Div" | Expr.Rem -> "Rem" | Expr.Lt -> "Lt"
                    | Expr.Leq -> "Leq" | Expr.Gt -> "Gt" | Expr.Geq -> "Geq"
                    | Expr.Eq -> "Eq" | Expr.Neq -> "Neq" | Expr.And -> "And"
                    | Expr.Or -> "Or" | Expr.Xor -> "Xor" | Expr.Cat -> "Cat"
                    | Expr.Dshl -> "Dshl" | Expr.Dshr -> "Dshr")
                    pr
                    (fun () -> Eval.binop op ~ta ~tb (rd sa) (rd sb))
            end
        | Tape.PIntop (op, n, ta, sa) ->
            if narrow pr.Tape.pdst && narrow sa then begin
              let w = Ty.width ta in
              match op with
              | Expr.Pad ->
                  if Ty.is_signed ta && n > w then ISext (63 - w, sa) else ICopy sa
              | Expr.Shl -> IShlC (n, sa)
              | Expr.Shr ->
                  IShrC ((if Ty.is_signed ta then min n (w - 1) else min n 62), sa)
              | Expr.Head -> IShrC (w - n, sa)
              | Expr.Tail -> ICopy sa (* destination mask truncates *)
            end
            else boxed "intop" pr (fun () -> Eval.intop op n ~ta (rd sa))
        | Tape.PBits (hi, lo, sa) ->
            if narrow pr.Tape.pdst && narrow sa then IShrC (lo, sa)
            else if narrow pr.Tape.pdst then IBitsW (lo, hi - lo + 1, sa)
            else boxed "bits" pr (fun () -> Eval.bits ~hi ~lo (rd sa))
        | Tape.PMemRead (mi, ai) -> (
            let m = mems.(mi) in
            match m.store with
            | M_int data when narrow ai -> IMemRead (data, ai)
            | M_int data ->
                IBox
                  (fun () ->
                    let a = Bv.to_int_trunc bvals.(ai) in
                    Bv.of_int62 ~width:m.m_width
                      (if a < Array.length data then data.(a) else 0))
            | M_bv data ->
                IBox
                  (fun () ->
                    let a =
                      if wide.(ai) then Bv.to_int_trunc bvals.(ai) else ivals.(ai)
                    in
                    if a < Array.length data then data.(a) else m.m_zero))))
    protos_arr;
  (* reverse edges for the activity worklist; the tape precomputed which
     positions are a memory's combinational reads (re-dirtied on write) *)
  let readers_l = Array.make nslots [] in
  Array.iteri
    (fun k (pr : Tape.proto) ->
      List.iter (fun s -> readers_l.(s) <- k :: readers_l.(s)) pr.Tape.pdeps)
    protos_arr;
  let slot_readers = Array.map (fun l -> Array.of_list (List.rev l)) readers_l in
  let reg_list = Array.to_list tp.Tape.regs in
  let ri = List.filter (fun (_, _, w) -> Eval.Int.fits w) reg_list in
  let rb = List.filter (fun (_, _, w) -> not (Eval.Int.fits w)) reg_list in
  let prof =
    match profile with
    | None -> None
    | Some mode ->
        let ph_roots = Array.copy tp.Tape.roots in
        let ph_is_root =
          Array.init np (fun k ->
              match Hashtbl.find_opt tp.Tape.root_slot tp.Tape.roots.(k) with
              | Some s -> s = protos_arr.(k).Tape.pdst
              | None -> false)
        in
        let ph_ops = Array.map op_name ins in
        let ph_every = match mode with Counts_only -> 0 | Sampled n -> max 1 n in
        (* calibrate out the cost of a clock-read pair so sampled
           self-times measure the instruction, not the probe *)
        let ph_cal =
          if ph_every = 0 then 0
          else begin
            let m = ref max_int in
            for _ = 1 to 256 do
              let a = Obs.now_ns () in
              let b = Obs.now_ns () in
              if b - a >= 0 && b - a < !m then m := b - a
            done;
            if !m = max_int then 0 else !m
          end
        in
        let ph_wscr =
          Array.init np (fun k ->
              match ins.(k) with
              | WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _ ->
                  Bv.zero widths.(dsts.(k))
              | _ -> Bv.zero 1)
        in
        Some
          {
            ph_hits = Array.make np 0;
            ph_time = Array.make np 0;
            ph_exec = Array.make np 0;
            ph_every;
            ph_cal;
            ph_runs = 0;
            ph_roots;
            ph_is_root;
            ph_ops;
            ph_wscr;
          }
  in
  {
    p;
    slot_of = tp.Tape.slot_of;
    alias = tp.Tape.alias;
    widths;
    wide;
    ivals;
    bvals;
    ins;
    dsts;
    masks;
    slot_readers;
    dirty = Array.make np true;
    cover_names = tp.Tape.cover_names;
    cover_slots = tp.Tape.cover_slots;
    counters = Array.make (Array.length tp.Tape.cover_names) 0;
    cv_names = tp.Tape.cv_names;
    cv_sig = tp.Tape.cv_sig;
    cv_en = tp.Tape.cv_en;
    cv_arr = Array.map (fun w -> Array.make (1 lsl min w 20) 0) tp.Tape.cv_widths;
    stop_slots = tp.Tape.stop_slots;
    print_conds = tp.Tape.print_conds;
    print_msgs = tp.Tape.print_msgs;
    print_args = tp.Tape.print_args;
    ri_dst = Array.of_list (List.map (fun (d, _, _) -> d) ri);
    ri_src = Array.of_list (List.map (fun (_, s, _) -> s) ri);
    ri_scratch = Array.make (List.length ri) 0;
    rb_dst = Array.of_list (List.map (fun (d, _, _) -> d) rb);
    rb_src = Array.of_list (List.map (fun (_, s, _) -> s) rb);
    rb_scratch = Array.make (List.length rb) (Bv.zero 1);
    mems;
    builtin_db = tp.Tape.builtin_db;
    prof;
    activity;
    tape_dirty = true;
    cycle = 0;
    stopped = false;
  }

let line_db (t : t) = t.builtin_db

(* Tape composition, for the bench harness and perf debugging. *)
let stats (t : t) : string =
  let boxed = ref 0 and wide_extract = ref 0 and wide_inplace = ref 0 in
  Array.iter
    (function
      | IBox _ -> incr boxed
      | IBitsW _ | IOrrW _ | IAndrW _ | IXorrW _ -> incr wide_extract
      | WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _ ->
          incr wide_inplace
      | _ -> ())
    t.ins;
  let wide_slots = Array.fold_left (fun n w -> if w then n + 1 else n) 0 t.wide in
  Printf.sprintf
    "%d instructions (%d boxed, %d wide-extract, %d wide-inplace), %d slots (%d wide)"
    (Array.length t.ins) !boxed !wide_extract !wide_inplace (Array.length t.widths)
    wide_slots

let mark_readers (t : t) s =
  let rs = t.slot_readers.(s) in
  for i = 0 to Array.length rs - 1 do
    t.dirty.(rs.(i)) <- true
  done

(* Operand read with a pre-decoded sign-extension shift (0 = unsigned). *)
let[@inline] sxr (iv : int array) sh s = (Array.unsafe_get iv s lsl sh) asr sh

(* Int-path instruction execution, returning the {e unmasked} result; the
   run loop masks to the destination width. [IBox] is handled by the
   callers. Slot indices were validated at build time, so plain unsafe
   array reads are fine here. *)
let exec_value (t : t) (i : ins) : int =
  let iv = t.ivals in
  match i with
  | ICopy s -> Array.unsafe_get iv s
  | IMux (s, a, b) ->
      if Array.unsafe_get iv s <> 0 then Array.unsafe_get iv a
      else Array.unsafe_get iv b
  | INot s -> lnot (Array.unsafe_get iv s)
  | IAndr (full, s) -> if Array.unsafe_get iv s = full then 1 else 0
  | IOrr s -> if Array.unsafe_get iv s <> 0 then 1 else 0
  | IXorr s -> Bv.popcount_int (Array.unsafe_get iv s) land 1
  | INeg (sh, s) -> -sxr iv sh s
  | ISext (sh, s) -> sxr iv sh s
  | IShrC (n, s) -> Array.unsafe_get iv s lsr n
  | IShlC (n, s) -> Array.unsafe_get iv s lsl n
  | IAdd (sha, a, shb, b) -> sxr iv sha a + sxr iv shb b
  | ISub (sha, a, shb, b) -> sxr iv sha a - sxr iv shb b
  | IMul (sha, a, shb, b) -> sxr iv sha a * sxr iv shb b
  | IDiv (sha, a, shb, b) ->
      let d = sxr iv shb b in
      if d = 0 then 0 else sxr iv sha a / d
  | IRem (sha, a, shb, b) ->
      let d = sxr iv shb b in
      if d = 0 then Array.unsafe_get iv a else sxr iv sha a mod d
  | ILt (sha, a, shb, b) -> if sxr iv sha a < sxr iv shb b then 1 else 0
  | ILeq (sha, a, shb, b) -> if sxr iv sha a <= sxr iv shb b then 1 else 0
  | IGt (sha, a, shb, b) -> if sxr iv sha a > sxr iv shb b then 1 else 0
  | IGeq (sha, a, shb, b) -> if sxr iv sha a >= sxr iv shb b then 1 else 0
  | IEq (sha, a, shb, b) -> if sxr iv sha a = sxr iv shb b then 1 else 0
  | INeq (sha, a, shb, b) -> if sxr iv sha a <> sxr iv shb b then 1 else 0
  | IAnd (sha, a, shb, b) -> sxr iv sha a land sxr iv shb b
  | IOr (sha, a, shb, b) -> sxr iv sha a lor sxr iv shb b
  | IXor (sha, a, shb, b) -> sxr iv sha a lxor sxr iv shb b
  | ICat (a, wb, b) -> (Array.unsafe_get iv a lsl wb) lor Array.unsafe_get iv b
  | IDshl (sha, a, wr, b) ->
      let n = Array.unsafe_get iv b in
      if n >= wr then 0 else sxr iv sha a lsl n
  | IDshr (sha, a, b) ->
      let n = Array.unsafe_get iv b in
      sxr iv sha a asr (if n > 62 then 62 else n)
  | IBitsW (lo, w, s) -> Bv.extract_int (Array.unsafe_get t.bvals s) ~lo ~width:w
  | IOrrW s -> if Bv.is_zero (Array.unsafe_get t.bvals s) then 0 else 1
  | IAndrW (w, s) -> if Bv.popcount (Array.unsafe_get t.bvals s) = w then 1 else 0
  | IXorrW s -> Bv.popcount (Array.unsafe_get t.bvals s) land 1
  | IMemRead (data, a) ->
      let ad = Array.unsafe_get iv a in
      if ad < Array.length data then Array.unsafe_get data ad else 0
  | WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _ | IBox _ ->
      assert false

(* Wide-destination in-place execution: mutates the destination slot's
   buffer directly, no allocation. The buffer identity is stable for the
   life of the simulation — a slot produced by an in-place instruction is
   never rebound, and values that escape the tape are copied
   ({!read_slot_bv_fresh}). *)
let exec_wide (t : t) (d : int) (i : ins) : unit =
  let bv = t.bvals in
  match i with
  | WMux (ss, sa, sb) ->
      Bv.blit_into
        ~dst:(Array.unsafe_get bv d)
        (Array.unsafe_get bv (if Array.unsafe_get t.ivals ss <> 0 then sa else sb))
  | WCat (sa, sb, wb) ->
      let dst = Array.unsafe_get bv d in
      Bv.fill_zero dst;
      if t.wide.(sb) then Bv.or_bits_into ~dst ~lo:0 (Array.unsafe_get bv sb)
      else Bv.or_int_into ~dst ~lo:0 (Array.unsafe_get t.ivals sb);
      if t.wide.(sa) then Bv.or_bits_into ~dst ~lo:wb (Array.unsafe_get bv sa)
      else Bv.or_int_into ~dst ~lo:wb (Array.unsafe_get t.ivals sa)
  | WDshl (sa, sb) ->
      let dst = Array.unsafe_get bv d in
      Bv.fill_zero dst;
      let n = Array.unsafe_get t.ivals sb in
      if n < t.widths.(d) then Bv.or_int_into ~dst ~lo:n (Array.unsafe_get t.ivals sa)
  | WDshr (sa, sb) ->
      Bv.shr_into ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get t.ivals sb)
  | WOr (sa, sb) ->
      Bv.logor_into ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | WAnd (sa, sb) ->
      Bv.logand_into ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | WXor (sa, sb) ->
      Bv.logxor_into ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | _ -> assert false

(* Wide in-place execution with change detection, for the profiled paths.
   Single-op instructions use {!Bv}'s fused [_changed] kernels (one pass,
   same cost as the plain op); the two multi-call compositions (cat and
   dynamic left shift build their result with several OR passes) execute
   into the pre-allocated per-index scratch and commit on change. The
   destination buffer's identity is preserved either way, and nothing
   allocates. *)
let exec_wide_changed (t : t) (scr : Bv.t) (d : int) (i : ins) : bool =
  let bv = t.bvals in
  match i with
  | WMux (ss, sa, sb) ->
      Bv.blit_into_changed
        ~dst:(Array.unsafe_get bv d)
        (Array.unsafe_get bv (if Array.unsafe_get t.ivals ss <> 0 then sa else sb))
  | WDshr (sa, sb) ->
      Bv.shr_into_changed ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get t.ivals sb)
  | WOr (sa, sb) ->
      Bv.logor_into_changed ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | WAnd (sa, sb) ->
      Bv.logand_into_changed ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | WXor (sa, sb) ->
      Bv.logxor_into_changed ~dst:(Array.unsafe_get bv d) (Array.unsafe_get bv sa)
        (Array.unsafe_get bv sb)
  | (WCat _ | WDshl _) as i ->
      let old = bv.(d) in
      bv.(d) <- scr;
      exec_wide t d i;
      bv.(d) <- old;
      if Bv.equal scr old then false
      else begin
        Bv.blit_into ~dst:old scr;
        true
      end
  | _ -> assert false

(* Generic execute-compare-store used by the activity-counts and timed
   loops; reports whether the destination's value changed. *)
let exec_changed (t : t) (pf : prof) (k : int) (d : int) : bool =
  match Array.unsafe_get t.ins k with
  | IBox f ->
      if t.wide.(d) then begin
        let v = f () in
        if Bv.equal v t.bvals.(d) then false
        else begin
          t.bvals.(d) <- v;
          true
        end
      end
      else begin
        let v = Bv.to_int_trunc (f ()) land t.masks.(k) in
        if v = t.ivals.(d) then false
        else begin
          t.ivals.(d) <- v;
          true
        end
      end
  | (WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _) as i ->
      exec_wide_changed t (Array.unsafe_get pf.ph_wscr k) d i
  | i ->
      let v = exec_value t i land Array.unsafe_get t.masks k in
      if v = Array.unsafe_get t.ivals d then false
      else begin
        Array.unsafe_set t.ivals d v;
        true
      end

(* Counts profiling: the dirty-flag worklist (profiled builds always use
   the activity schedule) with per-instruction execution counts
   ([ph_exec], the scheduler diagnostic) alongside the change counts.
   Wide in-place results are change-compared here, so readers re-dirty
   only on real changes — strictly more precise than the unprofiled
   conservative re-dirty and value-equivalent (re-running on unchanged
   inputs cannot change outputs). *)
let run_tape_counts (t : t) (pf : prof) =
  let n = Array.length t.ins in
  let execs = pf.ph_exec and hits = pf.ph_hits in
  for k = 0 to n - 1 do
    if Array.unsafe_get t.dirty k then begin
      Array.unsafe_set t.dirty k false;
      Array.unsafe_set execs k (Array.unsafe_get execs k + 1);
      let d = Array.unsafe_get t.dsts k in
      match Array.unsafe_get t.ins k with
      | IBox f ->
          if t.wide.(d) then begin
            let v = f () in
            if not (Bv.equal v t.bvals.(d)) then begin
              t.bvals.(d) <- v;
              Array.unsafe_set hits k (Array.unsafe_get hits k + 1);
              mark_readers t d
            end
          end
          else begin
            let v = Bv.to_int_trunc (f ()) land t.masks.(k) in
            if v <> t.ivals.(d) then begin
              t.ivals.(d) <- v;
              Array.unsafe_set hits k (Array.unsafe_get hits k + 1);
              mark_readers t d
            end
          end
      | (WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _) as i ->
          if exec_wide_changed t (Array.unsafe_get pf.ph_wscr k) d i then begin
            Array.unsafe_set hits k (Array.unsafe_get hits k + 1);
            mark_readers t d
          end
      | i ->
          let v = exec_value t i land Array.unsafe_get t.masks k in
          if v <> Array.unsafe_get t.ivals d then begin
            Array.unsafe_set t.ivals d v;
            Array.unsafe_set hits k (Array.unsafe_get hits k + 1);
            mark_readers t d
          end
    end
  done

(* The sampled run: every instruction is bracketed by a monotonic clock
   pair, with the calibrated probe cost subtracted. Runs once every
   [ph_every] [run_tape]s, so its generic-dispatch slowdown amortizes to
   noise; hit and exec counts stay exact because it maintains them too. *)
let run_tape_timed (t : t) (pf : prof) =
  let n = Array.length t.ins in
  for k = 0 to n - 1 do
    if (not t.activity) || Array.unsafe_get t.dirty k then begin
      if t.activity then begin
        Array.unsafe_set t.dirty k false;
        pf.ph_exec.(k) <- pf.ph_exec.(k) + 1
      end;
      let d = Array.unsafe_get t.dsts k in
      let t0 = Obs.now_ns () in
      let changed = exec_changed t pf k d in
      let t1 = Obs.now_ns () in
      let dt = t1 - t0 - pf.ph_cal in
      if dt > 0 then pf.ph_time.(k) <- pf.ph_time.(k) + dt;
      if changed then begin
        pf.ph_hits.(k) <- pf.ph_hits.(k) + 1;
        if t.activity then mark_readers t d
      end
    end
  done

let run_tape_off (t : t) =
  let n = Array.length t.ins in
  if t.activity then
    for k = 0 to n - 1 do
      if Array.unsafe_get t.dirty k then begin
        Array.unsafe_set t.dirty k false;
        let d = Array.unsafe_get t.dsts k in
        match Array.unsafe_get t.ins k with
        | IBox f ->
            if t.wide.(d) then begin
              let v = f () in
              if not (Bv.equal v t.bvals.(d)) then begin
                t.bvals.(d) <- v;
                mark_readers t d
              end
            end
            else begin
              let v = Bv.to_int_trunc (f ()) land t.masks.(k) in
              if v <> t.ivals.(d) then begin
                t.ivals.(d) <- v;
                mark_readers t d
              end
            end
        | (WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _) as i ->
            (* in-place update overwrites the old value before it could be
               compared, so conservatively re-dirty all readers *)
            exec_wide t d i;
            mark_readers t d
        | i ->
            let v = exec_value t i land Array.unsafe_get t.masks k in
            if v <> Array.unsafe_get t.ivals d then begin
              Array.unsafe_set t.ivals d v;
              mark_readers t d
            end
      end
    done
  else begin
    (* plain mode is the throughput path: one match per instruction with
       the operator bodies inlined (no [exec_value] call, no second
       dispatch), everything running over hoisted flat arrays *)
    let iv = t.ivals in
    let ins = t.ins and dsts = t.dsts and masks = t.masks in
    for k = 0 to n - 1 do
      let d = Array.unsafe_get dsts k in
      let m = Array.unsafe_get masks k in
      let set v = Array.unsafe_set iv d (v land m) in
      match Array.unsafe_get ins k with
      | ICopy s -> set (Array.unsafe_get iv s)
      | IMux (s, a, b) ->
          set
            (if Array.unsafe_get iv s <> 0 then Array.unsafe_get iv a
             else Array.unsafe_get iv b)
      | INot s -> set (lnot (Array.unsafe_get iv s))
      | IAndr (full, s) -> set (if Array.unsafe_get iv s = full then 1 else 0)
      | IOrr s -> set (if Array.unsafe_get iv s <> 0 then 1 else 0)
      | IXorr s -> set (Bv.popcount_int (Array.unsafe_get iv s) land 1)
      | INeg (sh, s) -> set (-sxr iv sh s)
      | ISext (sh, s) -> set (sxr iv sh s)
      | IShrC (n, s) -> set (Array.unsafe_get iv s lsr n)
      | IShlC (n, s) -> set (Array.unsafe_get iv s lsl n)
      | IAdd (sha, a, shb, b) -> set (sxr iv sha a + sxr iv shb b)
      | ISub (sha, a, shb, b) -> set (sxr iv sha a - sxr iv shb b)
      | IMul (sha, a, shb, b) -> set (sxr iv sha a * sxr iv shb b)
      | IDiv (sha, a, shb, b) ->
          let dv = sxr iv shb b in
          set (if dv = 0 then 0 else sxr iv sha a / dv)
      | IRem (sha, a, shb, b) ->
          let dv = sxr iv shb b in
          set (if dv = 0 then Array.unsafe_get iv a else sxr iv sha a mod dv)
      | ILt (sha, a, shb, b) -> set (if sxr iv sha a < sxr iv shb b then 1 else 0)
      | ILeq (sha, a, shb, b) -> set (if sxr iv sha a <= sxr iv shb b then 1 else 0)
      | IGt (sha, a, shb, b) -> set (if sxr iv sha a > sxr iv shb b then 1 else 0)
      | IGeq (sha, a, shb, b) -> set (if sxr iv sha a >= sxr iv shb b then 1 else 0)
      | IEq (sha, a, shb, b) -> set (if sxr iv sha a = sxr iv shb b then 1 else 0)
      | INeq (sha, a, shb, b) -> set (if sxr iv sha a <> sxr iv shb b then 1 else 0)
      | IAnd (sha, a, shb, b) -> set (sxr iv sha a land sxr iv shb b)
      | IOr (sha, a, shb, b) -> set (sxr iv sha a lor sxr iv shb b)
      | IXor (sha, a, shb, b) -> set (sxr iv sha a lxor sxr iv shb b)
      | ICat (a, wb, b) ->
          set ((Array.unsafe_get iv a lsl wb) lor Array.unsafe_get iv b)
      | IDshl (sha, a, wr, b) ->
          let sh = Array.unsafe_get iv b in
          set (if sh >= wr then 0 else sxr iv sha a lsl sh)
      | IDshr (sha, a, b) ->
          let sh = Array.unsafe_get iv b in
          set (sxr iv sha a asr (if sh > 62 then 62 else sh))
      | IBitsW (lo, w, s) ->
          set (Bv.extract_int (Array.unsafe_get t.bvals s) ~lo ~width:w)
      | IOrrW s -> set (if Bv.is_zero (Array.unsafe_get t.bvals s) then 0 else 1)
      | IAndrW (w, s) ->
          set (if Bv.popcount (Array.unsafe_get t.bvals s) = w then 1 else 0)
      | IXorrW s -> set (Bv.popcount (Array.unsafe_get t.bvals s) land 1)
      | IMemRead (data, a) ->
          let ad = Array.unsafe_get iv a in
          set (if ad < Array.length data then Array.unsafe_get data ad else 0)
      | (WMux _ | WCat _ | WDshl _ | WDshr _ | WOr _ | WAnd _ | WXor _) as i ->
          exec_wide t d i
      | IBox f ->
          if t.wide.(d) then t.bvals.(d) <- f ()
          else set (Bv.to_int_trunc (f ()))
    done
  end;
  t.tape_dirty <- false

(* One branch on [t.prof] per call — the profiler-off cost. *)
let run_tape (t : t) =
  match t.prof with
  | None -> run_tape_off t
  | Some pf ->
      pf.ph_runs <- pf.ph_runs + 1;
      if pf.ph_every > 0 && pf.ph_runs mod pf.ph_every = 0 then
        run_tape_timed t pf
      else run_tape_counts t pf;
      t.tape_dirty <- false

let clock_edge (t : t) =
  if t.tape_dirty then run_tape t;
  (* sample covers, cover-values, stops, prints on the settled tape *)
  for k = 0 to Array.length t.cover_slots - 1 do
    if read_slot_bool t t.cover_slots.(k) then
      t.counters.(k) <- Backend.sat_incr t.counters.(k)
  done;
  for k = 0 to Array.length t.cv_sig - 1 do
    if read_slot_bool t t.cv_en.(k) then begin
      let v = read_slot_int t t.cv_sig.(k) in
      let arr = t.cv_arr.(k) in
      if v < Array.length arr then arr.(v) <- Backend.sat_incr arr.(v)
    end
  done;
  for k = 0 to Array.length t.stop_slots - 1 do
    if read_slot_bool t t.stop_slots.(k) then t.stopped <- true
  done;
  for k = 0 to Array.length t.print_conds - 1 do
    if read_slot_bool t t.print_conds.(k) then begin
      let args = Array.to_list (Array.map (fun s -> read_slot_bv t s) t.print_args.(k)) in
      !Backend.print_sink (Prep.format_print t.print_msgs.(k) args)
    end
  done;
  (* capture register next-values before anything commits (reg-to-reg
     chains and regs fed by sync-read data must see pre-edge values) *)
  for i = 0 to Array.length t.ri_src - 1 do
    t.ri_scratch.(i) <- read_slot_int t t.ri_src.(i)
  done;
  for i = 0 to Array.length t.rb_src - 1 do
    t.rb_scratch.(i) <- read_slot_bv_fresh t t.rb_src.(i)
  done;
  (* memories: writes commit before sync-read data latches (write-first
     read-under-write, matching the interpreter); later ports win *)
  for mi = 0 to Array.length t.mems - 1 do
    let m = t.mems.(mi) in
    let wrote = ref false in
    (match m.store with
    | M_int data ->
        let len = Array.length data in
        for j = 0 to Array.length m.wp_en - 1 do
          if read_slot_bool t m.wp_en.(j) then begin
            wrote := true;
            let a = read_slot_int t m.wp_addr.(j) in
            if a < len then data.(a) <- read_slot_int t m.wp_data.(j)
          end
        done;
        for j = 0 to Array.length m.sr_addr - 1 do
          let a = read_slot_int t m.sr_addr.(j) in
          let v = if a < len then data.(a) else 0 in
          let ds = m.sr_data.(j) in
          if t.activity then begin
            if v <> t.ivals.(ds) then begin
              t.ivals.(ds) <- v;
              mark_readers t ds
            end
          end
          else t.ivals.(ds) <- v
        done
    | M_bv data ->
        let len = Array.length data in
        for j = 0 to Array.length m.wp_en - 1 do
          if read_slot_bool t m.wp_en.(j) then begin
            wrote := true;
            let a = read_slot_int t m.wp_addr.(j) in
            if a < len then data.(a) <- read_slot_bv_fresh t m.wp_data.(j)
          end
        done;
        for j = 0 to Array.length m.sr_addr - 1 do
          let a = read_slot_int t m.sr_addr.(j) in
          let v = if a < len then data.(a) else m.m_zero in
          let ds = m.sr_data.(j) in
          if t.activity then begin
            if not (Bv.equal v t.bvals.(ds)) then begin
              t.bvals.(ds) <- v;
              mark_readers t ds
            end
          end
          else t.bvals.(ds) <- v
        done);
    if t.activity && !wrote then begin
      let cr = m.comb_readers in
      for j = 0 to Array.length cr - 1 do
        t.dirty.(cr.(j)) <- true
      done
    end
  done;
  (* commit registers *)
  for i = 0 to Array.length t.ri_dst - 1 do
    let ds = t.ri_dst.(i) in
    let v = t.ri_scratch.(i) in
    if t.activity then begin
      if v <> t.ivals.(ds) then begin
        t.ivals.(ds) <- v;
        mark_readers t ds
      end
    end
    else t.ivals.(ds) <- v
  done;
  for i = 0 to Array.length t.rb_dst - 1 do
    let ds = t.rb_dst.(i) in
    let v = t.rb_scratch.(i) in
    if t.activity then begin
      if not (Bv.equal v t.bvals.(ds)) then begin
        t.bvals.(ds) <- v;
        mark_readers t ds
      end
    end
    else t.bvals.(ds) <- v
  done;
  t.tape_dirty <- true;
  t.cycle <- t.cycle + 1

let to_backend ~name (t : t) : Backend.t =
  (* pre-resolve input name -> slot so a poke costs one hash lookup; with
     tiny tapes (a few dozen instructions) poking dominates the cycle *)
  let input_slot : (string, int) Hashtbl.t =
    Hashtbl.create (Hashtbl.length t.p.Prep.input_names)
  in
  Hashtbl.iter
    (fun n _ -> Hashtbl.replace input_slot n (Hashtbl.find t.slot_of n))
    t.p.Prep.input_names;
  (* testbench loops poke the same interned name strings every cycle, so a
     tiny physical-equality memo beats re-hashing the string each time *)
  let cache_cap = 32 in
  let cache_keys = Array.make cache_cap "" in
  let cache_slots = Array.make cache_cap 0 in
  let cache_n = ref 0 in
  let find_input pname =
    let n = !cache_n in
    let rec go i =
      if i < n then
        if cache_keys.(i) == pname then cache_slots.(i) else go (i + 1)
      else begin
        match Hashtbl.find_opt input_slot pname with
        | None -> Backend.error "poke: %s is not an input" pname
        | Some s ->
            if n < cache_cap then begin
              cache_keys.(n) <- pname;
              cache_slots.(n) <- s;
              incr cache_n
            end;
            s
      end
    in
    go 0
  in
  Backend.with_telemetry
    {
      Backend.backend_name = name;
      circuit = t.p.Prep.low;
      poke =
        (fun pname v ->
          let s = find_input pname in
              let w = t.widths.(s) in
              if t.wide.(s) then begin
                let v = Bv.extend_u v w in
                if not (Bv.equal t.bvals.(s) v) then begin
                  t.bvals.(s) <- v;
                  if t.activity then mark_readers t s;
                  t.tape_dirty <- true
                end
              end
              else begin
                let vi = Bv.to_int_trunc v land Eval.Int.mask w in
                if vi <> t.ivals.(s) then begin
                  t.ivals.(s) <- vi;
                  if t.activity then mark_readers t s;
                  t.tape_dirty <- true
                end
              end);
      peek =
        (fun pname ->
          if t.tape_dirty then run_tape t;
          match Hashtbl.find_opt t.slot_of pname with
          | Some s -> read_slot_bv_fresh t t.alias.(s)
          | None -> Backend.error "peek: unknown signal %s" pname);
      step =
        (fun n ->
          for _ = 1 to n do
            clock_edge t
          done);
      counts =
        (fun () ->
          let out = Counts.create () in
          Array.iteri (fun k n -> Counts.set out n t.counters.(k)) t.cover_names;
          Array.iteri
            (fun k n ->
              Array.iteri
                (fun v c -> Counts.set out (Sic_coverage.Cover_values.value_key n v) c)
                t.cv_arr.(k))
            t.cv_names;
          out);
      cycles = (fun () -> t.cycle);
      finished = (fun () -> t.stopped);
    }

(** Create the Verilator-analogue backend. With [~builtin_line:true] the
    simulator hard-codes its own line coverage (counters appear alongside
    the pass-based ones, named [l_*] as usual — they {e are} the same
    instrumentation, performed internally, which is the paper's explanation
    for why the overheads match). *)
let create ?builtin_line (c : Circuit.t) : Backend.t =
  to_backend ~name:"compiled" (build ?builtin_line c)

(* Source location of a tape root, through the statement-id -> Info map
   captured at prepare time. *)
let loc_of (t : t) root =
  match Hashtbl.find_opt t.p.Prep.infos root with
  | Some (Info.Pos { file; line; _ }) -> file ^ ":" ^ string_of_int line
  | Some Info.Unknown | None -> "-"

let profile (t : t) : Profile.design_profile option =
  match t.prof with
  | None -> None
  | Some pf ->
      let rows =
        Array.init (Array.length pf.ph_hits) (fun k ->
            {
              Profile.idx = k;
              hits = pf.ph_hits.(k);
              time_ns = pf.ph_time.(k);
              is_root = pf.ph_is_root.(k);
              op = pf.ph_ops.(k);
              root = pf.ph_roots.(k);
              loc = loc_of t pf.ph_roots.(k);
            })
      in
      Some
        {
          Profile.design = t.p.Prep.low.Circuit.circuit_name;
          runs = pf.ph_runs;
          cycles = t.cycle;
          rows;
        }

(* Per-tape-position execution counts: the dirty-flag scheduler's exact
   re-evaluation counts ([[||]] when not profiling). Live-only
   diagnostic — excluded from the artifact because re-evaluation counts
   are scheduler-shaped, not value-shaped. *)
let exec_counts (t : t) : int array =
  match t.prof with None -> [||] | Some pf -> Array.copy pf.ph_exec
