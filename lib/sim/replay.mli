(** Record-and-replay testbenches (§5.1): capture the top-level inputs of
    a run once, then replay them into any backend — isolating raw
    simulation time from stimulus generation, and providing the common
    trace format the BMC backend emits witnesses in. *)

module Bv = Sic_bv.Bv

type trace = {
  input_names : string list;  (** includes reset *)
  frames : Bv.t array array;  (** frames.(cycle).(input index) *)
}

val cycles : trace -> int

val record : Backend.t -> cycles:int -> (Backend.t -> int -> unit) -> trace
(** Step the backend [cycles] edges; each cycle the driver pokes inputs
    first, then the pre-edge input values are captured. *)

val replay : Backend.t -> trace -> unit

val save_vcd : string -> Backend.t -> trace -> unit
val load_vcd : string -> trace
