(** Record-and-replay testbenches (§5.1): capture the top-level inputs of
    a run once, then replay them into any backend — isolating raw
    simulation time from stimulus generation, and providing the common
    trace format the BMC backend emits witnesses in. *)

module Bv = Sic_bv.Bv

type trace = {
  input_names : string list;  (** includes reset *)
  frames : Bv.t array array;  (** frames.(cycle).(input index) *)
}

val cycles : trace -> int

val record : Backend.t -> cycles:int -> (Backend.t -> int -> unit) -> trace
(** Step the backend [cycles] edges; each cycle the driver pokes inputs
    first, then the pre-edge input values are captured. *)

val replay : Backend.t -> trace -> unit

(** {1 Text interchange}

    A versioned, line-oriented serialization (header, input names, one
    line of space-separated binary values per cycle — the string length is
    the value's width). This is how fleet workers ship BMC witness traces
    back over their result pipes, and how witness seeds persist on disk. *)

exception Bad_format of string
(** The message names the offending line. *)

val format_header : string
(** First line of the v1 text format, ["# sic replay trace v1"]. *)

val to_string : trace -> string
val of_string : string -> trace
(** Raises {!Bad_format} on malformed or truncated input. *)

val save_vcd : string -> Backend.t -> trace -> unit
val load_vcd : string -> trace
