(** The engine profiler's versioned artifact: per-tape-instruction hit
    counts and sampled self-times attributed to IR statements and source
    locations. See profile.ml for the format and the determinism
    contract ([hits] = value-changing evaluations, so the bytes are
    independent of scheduler mode and worker count). *)

type row = {
  idx : int;  (** tape position *)
  hits : int;  (** value-changing evaluations *)
  time_ns : int;  (** sampled self-time; 0 in counts-only profiles *)
  is_root : bool;  (** produces the named statement's own value *)
  op : string;  (** instruction mnemonic *)
  root : string;  (** originating statement's defined name *)
  loc : string;  (** [file:line], or [-] when unknown *)
}

type design_profile = {
  design : string;
  runs : int;  (** [run_tape] invocations folded in *)
  cycles : int;
  rows : row array;  (** indexed by tape position *)
}

type t = design_profile list

exception Bad_format of string

(** {1 Interchange} *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Bad_format} (with a line number) on malformed input or a
    version this reader does not understand. *)

val output : out_channel -> t -> unit
val save : string -> t -> unit
val load : string -> t

val merge : t list -> t
(** Positional pointwise sum of [hits]/[time_ns] per design (fleet
    aggregation); raises {!Bad_format} if the same design appears with
    mismatched tape shapes. *)

(** {1 Aggregation} *)

type stmt_agg = {
  s_root : string;
  s_loc : string;
  s_hits : int;  (** how often the statement's value changed *)
  s_time_ns : int;  (** self-time summed over the statement's instructions *)
  s_instrs : int;
}

type line_agg = {
  l_loc : string;
  l_hits : int;
  l_time_ns : int;
  l_roots : string list;  (** statements on this line, hottest first *)
}

val by_statement : design_profile -> stmt_agg list
(** Hottest first: by sampled time, then hits, then name. *)

val by_line : design_profile -> line_agg list

val sampled : design_profile -> bool
(** True when the profile carries any sampled timings. *)

(** {1 Rendering} *)

val render : ?top:int -> t -> string
(** The [sic hotspots] ranked tables (per source line, per statement). *)

val folded : t -> string
(** Collapsed-stack lines ([design;file:line;statement;op <value>]) for
    flamegraph tooling. *)
