(** Bit-parallel lane engine, bit-sliced: up to 62 independent stimulus
    seeds per tape pass (see the interface for the design story). Decodes
    the same shared {!Tape} as {!Compiled}, but transposed: every slot
    the decoder can slice — width-1 signals {e and} wider ones — is
    stored as one packed [int] {e plane} per bit, where bit [l] of a
    plane is lane [l]'s value of that bit. Structural instructions
    (copies, pads, shifts by constants, bit extracts, concatenations,
    sign extensions) resolve at decode time to {e plane aliasing} — the
    destination's plane list points at the source's planes, zero runtime
    cost — while compute instructions (mux, add, sub, compares, bitwise
    ops, reductions) run as whole-plane kernels, a handful of bitwise
    ops per plane advancing all lanes at once. Slots the slicer cannot
    take (division, multiplication, dynamic shifts, memory ports) fall
    back to lane-strided [int] entries or per-lane [Bv.t] rows executed
    by a per-lane loop with the scalar engine's exact semantics; a
    fixpoint keeps the two worlds apart so no kernel ever crosses
    representations. The per-lane value stream is identical to a solo
    {!Compiled} run under the same stimulus, which is what the
    differential suites and the fleet's merge path rely on.

    Invariants: packed planes are always masked to [lane_mask]; plane 0
    is constant all-zeros and plane 1 constant all-ones (literal slots
    alias into them bit by bit, so they must never be written); wide
    rows are rebind-only (no [Bv.t] buffer is ever mutated in place), so
    rows, register scratch and memory stores may freely share objects. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Prep = Backend.Prep

(* Lane instructions. [V*] are the 1-bit peepholes: operands and
   destination are PHYSICAL PLANE indices, one bitwise op per 62 lanes.
   [L*] are the multi-plane kernels: operand arrays hold physical plane
   indices pre-extended at decode time to the width the kernel needs
   (zero-extension aliases the constant-zero plane, sign-extension
   replicates the operand's top plane), and the destination is a
   contiguous block of fresh planes starting at the instruction's [dst].
   [S*] mirror the scalar engine's narrow instruction set with an
   internal lane loop over strided storage ([SBox] is the per-lane boxed
   fallback over {!Eval} for wide rows); their operands are SLOTS. The
   1-bit compare kernels are the unsigned patterns; signed 1-bit
   compares decode to the swapped constructor (on [{0, -1}] signed
   order is reversed). *)
type lins =
  | VMux of int * int * int  (** sel, then, else *)
  | VNot of int
  | VAnd of int * int
  | VOr of int * int
  | VXor of int * int
  | VNxor of int * int  (** eq *)
  | VAndn of int * int  (** [a land lnot b]: unsigned [a > b] *)
  | VOrn of int * int  (** [(a lor lnot b) land lm]: unsigned [a >= b] *)
  | LMux of int * int array * int array  (** sel plane, then, else *)
  | LMuxC of int * int * int * int
      (** sel plane, then base, else base, width: both operand blocks
          contiguous — no index-array loads on the hottest kernel *)
  | LNot of int array
  | LAnd of int array * int array
  | LOr of int array * int array
  | LXor of int array * int array
  | LAdd of int array * int array
  | LSub of int array * int array
  | LNeg of int array
  | LEq of int array * int array  (** extended to compare width W *)
  | LNeq of int array * int array
  | LLt of int array * int array  (** signed ripple compare at W *)
  | LLeq of int array * int array
  | LGt of int array * int array
  | LGeq of int array * int array
  | LAndr of int array
  | LOrr of int array
  | LXorr of int array
  | SCopy of int
  | SMux of int * int * int
  | SNot of int
  | SAndr of int * int  (** full mask of the operand width, src *)
  | SOrr of int
  | SXorr of int
  | SNeg of int * int  (** sext shift, src *)
  | SSext of int * int
  | SShrC of int * int
  | SShlC of int * int
  | SAdd of int * int * int * int  (** sha, a, shb, b *)
  | SSub of int * int * int * int
  | SMul of int * int * int * int
  | SDiv of int * int * int * int
  | SRem of int * int * int * int
  | SLt of int * int * int * int
  | SLeq of int * int * int * int
  | SGt of int * int * int * int
  | SGeq of int * int * int * int
  | SEq of int * int * int * int
  | SNeq of int * int * int * int
  | SAnd of int * int * int * int
  | SOr of int * int * int * int
  | SXor of int * int * int * int
  | SCat of int * int * int  (** a, width of b, b *)
  | SDshl of int * int * int * int  (** sha, a, result width, shift slot *)
  | SDshr of int * int * int  (** sha, a, shift slot *)
  | SMemRead of int * int  (** memory index, addr slot *)
  | SBox of (int -> Bv.t)  (** lane -> value *)

(* Per-lane memory stores, lane-major so one lane's image is contiguous. *)
type lstore = LM_int of int array array | LM_bv of Bv.t array array

(* Pre-resolved stimulus plan for one data input, in port order: how
   [run_random] turns each lane's raw 31-bit draws into storage. *)
type iplan =
  | Pw1 of int  (** 1-bit input: its plane — draw and deposit fused *)
  | Pplane of int array * int  (** sliced input: planes, width *)
  | Pstrided of int * int  (** scalar narrow input: slot, width *)
  | Prows of int * int  (** scalar wide input: slot, width *)

type lmem = {
  lm_zero : Bv.t;
  lstore : lstore;
  lwp_en : int array;
  lwp_addr : int array;
  lwp_data : int array;
  lsr_addr : int array;  (** sync read ports: addr slot *)
  lsr_data : int array;  (** sync read ports: data slot (state) *)
}

type t = {
  p : Prep.prepared;
  slot_of : (string, int) Hashtbl.t;
  alias : int array;
  widths : int array;  (** per slot *)
  planes_of : int array array;  (** per slot: physical planes, [[||]] if
                                    the slot is strided or wide *)
  p1 : int array;  (** per slot: the plane of a width-1 slot, else -1 *)
  wide : bool array;  (** per slot: bad and beyond {!Eval.Int.max_width} *)
  lanes : int;
  lane_mask : int;
  pv : int array;  (** physical planes, always masked to [lane_mask];
                       [pv.(0) = 0] and [pv.(1) = lane_mask] forever *)
  sv : int array;  (** strided narrow values: [slot * lanes + lane] *)
  wv : Bv.t array array;  (** wide rows: [wv.(slot).(lane)], rebind-only *)
  ins : lins array;  (** compacted: aliases don't appear *)
  dsts : int array;  (** per instruction: destination slot ([S*]) or
                         base physical plane ([V*]/[L*]) *)
  masks : int array;  (** per instruction: scalar destination mask *)
  n_alias : int;  (** decode census over the tape's instructions: *)
  n_vec : int;  (** resolved to aliasing / plane kernels / lane loops *)
  n_scalar : int;
  input_slot : (string, int) Hashtbl.t;
  cover_names : string array;
  cover_slots : int array;
  counters : int array;  (** (cover, lane) -> count, cover-major *)
  cv_names : string array;
  cv_sig : int array;
  cv_en : int array;
  cv_arr : int array array array;  (** cover-value -> lane -> value bins *)
  stop_slots : int array;
  print_conds : int array;
  print_msgs : string array;
  print_args : int array array;
  rs_dst : int array;  (** plane-stored registers, flattened to physical
                           planes: whole-plane capture and commit *)
  rs_src : int array;
  rs_scratch : int array;
  ri_dst : int array;  (** strided registers, [reg * lanes + lane] *)
  ri_src : int array;
  ri_scratch : int array;
  rb_dst : int array;  (** wide registers *)
  rb_src : int array;
  rb_scratch : Bv.t array;
  mems : lmem array;
  builtin_db : Sic_coverage.Line_coverage.db option;
  iplan : iplan array;  (** data inputs in port order *)
  rowsa : int array array;  (** per input limb: 32x32 transpose block
                                holding lanes 0-31's draws as rows *)
  rowsb : int array array;  (** same for lanes 32-61 *)
  mutable tape_dirty : bool;
  mutable cycle : int;
  mutable stopped_mask : int;  (** bit [l]: a stop fired in lane [l] *)
}

let lanes (t : t) = t.lanes

(* Per-lane slot accessors (the cold, general versions; the tape loop
   inlines its own over hoisted arrays). A multi-bit plane-stored slot
   is gathered/scattered bit by bit — peeks, prints and pokes only. *)
let read_lane_nat (t : t) l s =
  let p = t.p1.(s) in
  if p >= 0 then (t.pv.(p) lsr l) land 1
  else begin
    let ps = t.planes_of.(s) in
    if Array.length ps = 0 then t.sv.((s * t.lanes) + l)
    else begin
      let v = ref 0 in
      for j = Array.length ps - 1 downto 0 do
        v := (!v lsl 1) lor ((t.pv.(ps.(j)) lsr l) land 1)
      done;
      !v
    end
  end

let write_lane_nat (t : t) l d v =
  let b = 1 lsl l in
  let p = t.p1.(d) in
  if p >= 0 then t.pv.(p) <- (t.pv.(p) land lnot b) lor ((v land 1) lsl l)
  else begin
    let ps = t.planes_of.(d) in
    if Array.length ps = 0 then t.sv.((d * t.lanes) + l) <- v
    else
      Array.iteri
        (fun j p ->
          t.pv.(p) <- (t.pv.(p) land lnot b) lor (((v lsr j) land 1) lsl l))
        ps
  end

let read_lane_int (t : t) l s =
  if t.wide.(s) then Bv.to_int_trunc t.wv.(s).(l) else read_lane_nat t l s

let read_lane_bool (t : t) l s =
  if t.wide.(s) then not (Bv.is_zero t.wv.(s).(l))
  else begin
    let ps = t.planes_of.(s) in
    if Array.length ps = 0 then t.sv.((s * t.lanes) + l) <> 0
    else begin
      let fired = ref false in
      Array.iter (fun p -> if (t.pv.(p) lsr l) land 1 <> 0 then fired := true) ps;
      !fired
    end
  end

let read_lane_bv (t : t) l s =
  if t.wide.(s) then t.wv.(s).(l)
  else begin
    let w = t.widths.(s) in
    let ps = t.planes_of.(s) in
    if Array.length ps = 0 || w <= 62 then
      Bv.of_int62 ~width:w (read_lane_nat t l s)
    else begin
      (* wide plane-stored slot: gather 31-bit chunks *)
      let b = Bv.zero w in
      let lo = ref 0 in
      while !lo < w do
        let wl = min 31 (w - !lo) in
        let c = ref 0 in
        for j = wl - 1 downto 0 do
          c := (!c lsl 1) lor ((t.pv.(ps.(!lo + j)) lsr l) land 1)
        done;
        Bv.or_int_into ~dst:b ~lo:!lo !c;
        lo := !lo + 31
      done;
      b
    end
  end

let build ?(builtin_line = false) ?(lanes = 62) (c : Circuit.t) : t =
  let lanes = max 1 (min 62 lanes) in
  let lane_mask = (1 lsl lanes) - 1 in
  let tp = Tape.build ~builtin_line c in
  let p = tp.Tape.p in
  let widths = tp.Tape.widths in
  let nslots = Array.length widths in
  (* ------------------------------------------------------------------ *)
  (* Badness fixpoint: which multi-bit slots must stay in scalar        *)
  (* (strided / row) storage. Width-1 slots are always planes — both    *)
  (* worlds can read and write a single plane, so they never poison     *)
  (* anything. A slot is bad when (a) it has width 0, (b) it feeds or   *)
  (* is fed by an instruction the slicer has no kernel for (division,   *)
  (* remainder, multiplication, dynamic shifts, memory reads, wide mux  *)
  (* selectors), (c) it is a memory port or cover-value slot (per-lane  *)
  (* loops over scalar reads), or (d) badness reaches it through an     *)
  (* instruction or register whose other side is bad — a kernel never   *)
  (* mixes representations.                                             *)
  let bad = Array.make nslots false in
  let changed = ref true in
  let mark s =
    if widths.(s) <> 1 && not bad.(s) then begin
      bad.(s) <- true;
      changed := true
    end
  in
  Array.iteri (fun s w -> if w = 0 then bad.(s) <- true) widths;
  Array.iter
    (fun (m : Tape.mem) ->
      Array.iter mark m.Tape.wp_en;
      Array.iter mark m.Tape.wp_addr;
      Array.iter mark m.Tape.wp_data;
      Array.iter mark m.Tape.sr_addr;
      Array.iter mark m.Tape.sr_data)
    tp.Tape.mems;
  Array.iter mark tp.Tape.cv_sig;
  Array.iter mark tp.Tape.cv_en;
  let scalar_kind (pr : Tape.proto) =
    match pr.Tape.pins with
    | Tape.PMemRead _ -> true
    | Tape.PMux (ss, _, _) -> widths.(ss) <> 1
    | Tape.PBinop ((Expr.Div | Expr.Rem | Expr.Dshl | Expr.Dshr), _, _, _, _) ->
        true
    | Tape.PBinop (Expr.Mul, _, _, sa, sb) ->
        not (widths.(pr.Tape.pdst) = 1 && widths.(sa) = 1 && widths.(sb) = 1)
    | _ -> false
  in
  Array.iter
    (fun (pr : Tape.proto) ->
      if scalar_kind pr then begin
        mark pr.Tape.pdst;
        List.iter mark pr.Tape.pdeps
      end)
    tp.Tape.protos;
  while !changed do
    changed := false;
    Array.iter
      (fun (pr : Tape.proto) ->
        let infected =
          bad.(pr.Tape.pdst) || List.exists (fun s -> bad.(s)) pr.Tape.pdeps
        in
        if infected then begin
          mark pr.Tape.pdst;
          List.iter mark pr.Tape.pdeps
        end)
      tp.Tape.protos;
    Array.iter
      (fun (d, s, w) ->
        if w <> 1 && (bad.(d) || bad.(s)) then begin
          mark d;
          mark s
        end)
      tp.Tape.regs
  done;
  (* storage classes *)
  let is_plane s = not bad.(s) in
  let wide = Array.init nslots (fun s -> bad.(s) && not (Eval.Int.fits widths.(s))) in
  let sv = Array.make (nslots * lanes) 0 in
  let wv =
    Array.init nslots (fun s ->
        if wide.(s) then Array.make lanes (Bv.zero widths.(s)) else [||])
  in
  (* ------------------------------------------------------------------ *)
  (* Physical plane allocation. Plane 0 is constant zero, plane 1       *)
  (* constant all-ones; literal (preset) plane slots alias into them    *)
  (* bit by bit. Plane slots no instruction produces — inputs, register *)
  (* state, floating wires — get fresh zero blocks up front; produced   *)
  (* slots are assigned during decode (aliased when the instruction is  *)
  (* structural, fresh when it computes).                               *)
  let zplane = 0 and oplane = 1 in
  let nplanes = ref 2 in
  let fresh_block w =
    let base = !nplanes in
    nplanes := !nplanes + w;
    base
  in
  let planes_of = Array.make nslots [||] in
  let p1 = Array.make nslots (-1) in
  let assign s ps =
    planes_of.(s) <- ps;
    if widths.(s) = 1 then p1.(s) <- ps.(0)
  in
  let preset_bv = Array.make nslots None in
  List.iter (fun (s, v) -> preset_bv.(s) <- Some v) tp.Tape.presets;
  Array.iteri
    (fun s v ->
      match v with
      | Some v when is_plane s ->
          assign s
            (Array.init widths.(s) (fun j ->
                 if Bv.bit v j then oplane else zplane))
      | _ -> ())
    preset_bv;
  let produced = Array.make nslots false in
  Array.iter (fun (pr : Tape.proto) -> produced.(pr.Tape.pdst) <- true) tp.Tape.protos;
  Array.iteri
    (fun s w ->
      if is_plane s && (not produced.(s)) && Array.length planes_of.(s) = 0
      then begin
        let base = fresh_block w in
        assign s (Array.init w (fun j -> base + j))
      end)
    widths;
  (* bad-slot presets keep the scalar engine's initialisation *)
  List.iter
    (fun (s, v) ->
      if bad.(s) then begin
        if wide.(s) then begin
          let bv = Bv.extend_u v widths.(s) in
          for l = 0 to lanes - 1 do
            wv.(s).(l) <- bv
          done
        end
        else begin
          let vi = Bv.to_int_trunc v land Eval.Int.mask widths.(s) in
          for l = 0 to lanes - 1 do
            sv.((s * lanes) + l) <- vi
          done
        end
      end)
    tp.Tape.presets;
  (* per-lane memory images, each lane starting from the power-on data *)
  let mems =
    Array.map
      (fun (m : Tape.mem) ->
        let store =
          if Eval.Int.fits m.Tape.m_width then
            LM_int
              (Array.init lanes (fun _ ->
                   Array.init m.Tape.m_depth (fun i ->
                       Bv.to_int_trunc m.Tape.m_init.(i))))
          else LM_bv (Array.init lanes (fun _ -> Array.copy m.Tape.m_init))
        in
        {
          lm_zero = Bv.zero m.Tape.m_width;
          lstore = store;
          lwp_en = m.Tape.wp_en;
          lwp_addr = m.Tape.wp_addr;
          lwp_data = m.Tape.wp_data;
          lsr_addr = m.Tape.sr_addr;
          lsr_data = m.Tape.sr_data;
        })
      tp.Tape.mems
  in
  (* ------------------------------------------------------------------ *)
  (* Decode, in topological order. Good instructions either alias the   *)
  (* destination's planes onto the sources' (structural ops: free) or   *)
  (* emit a plane kernel over a fresh destination block; bad ones       *)
  (* replicate the scalar engine's decode exactly (same guards, same    *)
  (* quirks), reading width-1 operands through the [p1] indirection.    *)
  let pvr = ref [||] in
  let rd_l l s =
    let p = p1.(s) in
    if p >= 0 then ((!pvr).(p) lsr l) land 1 else sv.((s * lanes) + l)
  in
  let rd_bv l s =
    if wide.(s) then wv.(s).(l) else Bv.of_int62 ~width:widths.(s) (rd_l l s)
  in
  let rdb l s =
    if wide.(s) then not (Bv.is_zero wv.(s).(l)) else rd_l l s <> 0
  in
  let sx ty = if Ty.is_signed ty then 63 - Ty.width ty else 0 in
  let n_alias = ref 0 and n_vec = ref 0 and n_scalar = ref 0 in
  let rev_ins = ref [] in
  let alias d ps =
    incr n_alias;
    assign d ps
  in
  let fresh d =
    let base = fresh_block widths.(d) in
    assign d (Array.init widths.(d) (fun j -> base + j));
    base
  in
  let emit_v d i =
    incr n_vec;
    rev_ins := (i, fresh d, 0) :: !rev_ins
  in
  let emit_s d i =
    incr n_scalar;
    if widths.(d) = 1 && Array.length planes_of.(d) = 0 then ignore (fresh d);
    rev_ins := (i, d, Eval.Int.mask widths.(d)) :: !rev_ins
  in
  (* operand planes extended to [n]: zero-extension aliases the zero
     plane, sign-extension replicates the raw top bit's plane *)
  let ext ~signed s n =
    let ps = planes_of.(s) in
    let w = Array.length ps in
    if w = n then ps
    else if n < w then Array.sub ps 0 n
    else
      Array.init n (fun j ->
          if j < w then ps.(j)
          else if signed && w > 0 then ps.(w - 1)
          else zplane)
  in
  Array.iter
    (fun (pr : Tape.proto) ->
      let d = pr.Tape.pdst in
      let wd = widths.(d) in
      let good =
        (not (scalar_kind pr))
        && (not bad.(d))
        && List.for_all (fun s -> not bad.(s)) pr.Tape.pdeps
      in
      if good then begin
        let w1 s = widths.(s) = 1 in
        let contig (a : int array) =
          let ok = ref true in
          for j = 1 to Array.length a - 1 do
            if a.(j) <> a.(0) + j then ok := false
          done;
          !ok
        in
        match pr.Tape.pins with
        | Tape.PCopy s -> alias d (ext ~signed:false s wd)
        | Tape.PMux (ss, sa, sb) ->
            if wd = 1 && w1 sa && w1 sb then
              emit_v d (VMux (p1.(ss), p1.(sa), p1.(sb)))
            else
              let pa = ext ~signed:false sa wd
              and pb = ext ~signed:false sb wd in
              if contig pa && contig pb then
                emit_v d (LMuxC (p1.(ss), pa.(0), pb.(0), wd))
              else emit_v d (LMux (p1.(ss), pa, pb))
        | Tape.PUnop (op, ta, sa) -> (
            match op with
            | Expr.Not ->
                if wd = 1 && w1 sa then emit_v d (VNot p1.(sa))
                else emit_v d (LNot (ext ~signed:false sa wd))
            | Expr.Andr ->
                (* 1-bit reductions are the identity *)
                if w1 sa then alias d planes_of.(sa)
                else emit_v d (LAndr planes_of.(sa))
            | Expr.Orr ->
                if w1 sa then alias d planes_of.(sa)
                else emit_v d (LOrr planes_of.(sa))
            | Expr.Xorr ->
                if w1 sa then alias d planes_of.(sa)
                else emit_v d (LXorr planes_of.(sa))
            | Expr.Neg ->
                (* 1-bit negate is the identity under the destination
                   mask (-0 = 0, -1 = ...1) *)
                if wd = 1 && w1 sa then alias d planes_of.(sa)
                else emit_v d (LNeg (ext ~signed:(Ty.is_signed ta) sa wd))
            | Expr.Cvt | Expr.AsUInt | Expr.AsSInt ->
                alias d (ext ~signed:false sa wd))
        | Tape.PIntop (op, n, ta, sa) -> (
            let w = Ty.width ta in
            let ws = widths.(sa) in
            let ps = planes_of.(sa) in
            let shifted_right sh =
              Array.init wd (fun j ->
                  if j + sh < ws then ps.(j + sh) else zplane)
            in
            match op with
            | Expr.Pad ->
                if Ty.is_signed ta && n > w then alias d (ext ~signed:true sa wd)
                else alias d (ext ~signed:false sa wd)
            | Expr.Shl ->
                alias d
                  (Array.init wd (fun j ->
                       if j < n then zplane
                       else if j - n < ws then ps.(j - n)
                       else zplane))
            | Expr.Shr ->
                alias d
                  (shifted_right (if Ty.is_signed ta then min n (w - 1) else n))
            | Expr.Head -> alias d (shifted_right (w - n))
            | Expr.Tail -> alias d (ext ~signed:false sa wd))
        | Tape.PBits (_, lo, sa) ->
            let ws = widths.(sa) and ps = planes_of.(sa) in
            alias d
              (Array.init wd (fun j ->
                   if lo + j < ws then ps.(lo + j) else zplane))
        | Tape.PBinop (op, ta, tb, sa, sb) -> (
            let sga = Ty.is_signed ta and sgb = Ty.is_signed tb in
            let all1 = wd = 1 && w1 sa && w1 sb in
            (* compare/equality width: both operands exact as signed
               W-bit values, so one signed ripple at W is always right *)
            let cw =
              max
                (widths.(sa) + if sga then 0 else 1)
                (widths.(sb) + if sgb then 0 else 1)
            in
            let ea () = ext ~signed:sga sa cw and eb () = ext ~signed:sgb sb cw in
            match op with
            | Expr.Add | Expr.Sub ->
                if all1 then emit_v d (VXor (p1.(sa), p1.(sb)))
                else
                  let a = ext ~signed:sga sa wd and b = ext ~signed:sgb sb wd in
                  emit_v d (if op = Expr.Add then LAdd (a, b) else LSub (a, b))
            | Expr.Mul ->
                (* only the all-1-bit product is good (see scalar_kind) *)
                emit_v d (VAnd (p1.(sa), p1.(sb)))
            | Expr.And ->
                if all1 then emit_v d (VAnd (p1.(sa), p1.(sb)))
                else emit_v d (LAnd (ext ~signed:sga sa wd, ext ~signed:sgb sb wd))
            | Expr.Or ->
                if all1 then emit_v d (VOr (p1.(sa), p1.(sb)))
                else emit_v d (LOr (ext ~signed:sga sa wd, ext ~signed:sgb sb wd))
            | Expr.Xor ->
                if all1 then emit_v d (VXor (p1.(sa), p1.(sb)))
                else emit_v d (LXor (ext ~signed:sga sa wd, ext ~signed:sgb sb wd))
            | Expr.Eq ->
                if all1 then emit_v d (VNxor (p1.(sa), p1.(sb)))
                else emit_v d (LEq (ea (), eb ()))
            | Expr.Neq ->
                if all1 then emit_v d (VXor (p1.(sa), p1.(sb)))
                else emit_v d (LNeq (ea (), eb ()))
            (* signed order on {0, -1} is the reverse of unsigned on
               {0, 1}, so signed 1-bit compares swap the kernel *)
            | Expr.Lt ->
                if all1 && sga = sgb then
                  emit_v d
                    (if sga then VAndn (p1.(sa), p1.(sb))
                     else VAndn (p1.(sb), p1.(sa)))
                else emit_v d (LLt (ea (), eb ()))
            | Expr.Leq ->
                if all1 && sga = sgb then
                  emit_v d
                    (if sga then VOrn (p1.(sa), p1.(sb))
                     else VOrn (p1.(sb), p1.(sa)))
                else emit_v d (LLeq (ea (), eb ()))
            | Expr.Gt ->
                if all1 && sga = sgb then
                  emit_v d
                    (if sga then VAndn (p1.(sb), p1.(sa))
                     else VAndn (p1.(sa), p1.(sb)))
                else emit_v d (LGt (ea (), eb ()))
            | Expr.Geq ->
                if all1 && sga = sgb then
                  emit_v d
                    (if sga then VOrn (p1.(sb), p1.(sa))
                     else VOrn (p1.(sa), p1.(sb)))
                else emit_v d (LGeq (ea (), eb ()))
            | Expr.Cat ->
                let wb = Ty.width tb in
                let wsa = widths.(sa)
                and wsb = widths.(sb)
                and pa = planes_of.(sa)
                and pb = planes_of.(sb) in
                alias d
                  (Array.init wd (fun j ->
                       if j < wb then if j < wsb then pb.(j) else zplane
                       else if j - wb < wsa then pa.(j - wb)
                       else zplane))
            | Expr.Div | Expr.Rem | Expr.Dshl | Expr.Dshr ->
                assert false (* scalar_kind *))
        | Tape.PMemRead _ -> assert false (* scalar_kind *)
      end
      else begin
        let narrow s = not wide.(s) in
        let base =
          match pr.Tape.pins with
          | Tape.PCopy s ->
              if narrow d && narrow s then SCopy s
              else SBox (fun l -> rd_bv l s)
          | Tape.PMux (ss, sa, sb) ->
              if narrow d && narrow ss && narrow sa && narrow sb then
                SMux (ss, sa, sb)
              else SBox (fun l -> if rdb l ss then rd_bv l sa else rd_bv l sb)
          | Tape.PUnop (op, ta, sa) ->
              if narrow d && narrow sa then begin
                let w = Ty.width ta in
                match op with
                | Expr.Not -> SNot sa
                | Expr.Andr ->
                    (* zero-width reduction is constant false *)
                    if w = 0 then SShrC (62, sa)
                    else SAndr (Eval.Int.mask w, sa)
                | Expr.Orr -> SOrr sa
                | Expr.Xorr -> SXorr sa
                | Expr.Neg -> SNeg (sx ta, sa)
                | Expr.Cvt | Expr.AsUInt | Expr.AsSInt -> SCopy sa
              end
              else SBox (fun l -> Eval.unop op ~ta (rd_bv l sa))
          | Tape.PBinop (op, ta, tb, sa, sb) ->
              if narrow d && narrow sa && narrow sb then begin
                let sha = sx ta and shb = sx tb in
                match op with
                | Expr.Add -> SAdd (sha, sa, shb, sb)
                | Expr.Sub -> SSub (sha, sa, shb, sb)
                | Expr.Mul -> SMul (sha, sa, shb, sb)
                | Expr.Div -> SDiv (sha, sa, shb, sb)
                | Expr.Rem -> SRem (sha, sa, shb, sb)
                | Expr.Lt -> SLt (sha, sa, shb, sb)
                | Expr.Leq -> SLeq (sha, sa, shb, sb)
                | Expr.Gt -> SGt (sha, sa, shb, sb)
                | Expr.Geq -> SGeq (sha, sa, shb, sb)
                | Expr.Eq -> SEq (sha, sa, shb, sb)
                | Expr.Neq -> SNeq (sha, sa, shb, sb)
                | Expr.And -> SAnd (sha, sa, shb, sb)
                | Expr.Or -> SOr (sha, sa, shb, sb)
                | Expr.Xor -> SXor (sha, sa, shb, sb)
                | Expr.Cat -> SCat (sa, Ty.width tb, sb)
                | Expr.Dshl ->
                    SDshl (sha, sa, Ty.width ta + (1 lsl Ty.width tb) - 1, sb)
                | Expr.Dshr -> SDshr (sha, sa, sb)
              end
              else SBox (fun l -> Eval.binop op ~ta ~tb (rd_bv l sa) (rd_bv l sb))
          | Tape.PIntop (op, n, ta, sa) ->
              if narrow d && narrow sa then begin
                let w = Ty.width ta in
                match op with
                | Expr.Pad ->
                    if Ty.is_signed ta && n > w then SSext (63 - w, sa)
                    else SCopy sa
                | Expr.Shl -> SShlC (n, sa)
                | Expr.Shr ->
                    SShrC
                      ((if Ty.is_signed ta then min n (w - 1) else min n 62), sa)
                | Expr.Head -> SShrC (w - n, sa)
                | Expr.Tail -> SCopy sa (* destination mask truncates *)
              end
              else SBox (fun l -> Eval.intop op n ~ta (rd_bv l sa))
          | Tape.PBits (hi, lo, sa) ->
              if narrow d && narrow sa then SShrC (lo, sa)
              else SBox (fun l -> Eval.bits ~hi ~lo (rd_bv l sa))
          | Tape.PMemRead (mi, ai) ->
              if narrow ai then SMemRead (mi, ai)
              else
                let mm = mems.(mi) in
                SBox
                  (fun l ->
                    let a = Bv.to_int_trunc wv.(ai).(l) in
                    match mm.lstore with
                    | LM_int data ->
                        Bv.of_int62 ~width:(Bv.width mm.lm_zero)
                          (if a < Array.length data.(l) then data.(l).(a) else 0)
                    | LM_bv data ->
                        if a < Array.length data.(l) then data.(l).(a)
                        else mm.lm_zero)
        in
        emit_s d base
      end)
    tp.Tape.protos;
  (* registers by storage class; plane-stored state (1-bit or sliced)
     captures and commits whole planes *)
  let reg_list = Array.to_list tp.Tape.regs in
  let is_rs (d, s, _) = (not bad.(d)) && not bad.(s) in
  let rs = List.filter is_rs reg_list in
  let rest = List.filter (fun r -> not (is_rs r)) reg_list in
  let ri = List.filter (fun (_, _, w) -> Eval.Int.fits w) rest in
  let rb = List.filter (fun (_, _, w) -> not (Eval.Int.fits w)) rest in
  let rs_dst = Array.concat (List.map (fun (d, _, _) -> planes_of.(d)) rs) in
  let rs_src = Array.concat (List.map (fun (_, s, _) -> planes_of.(s)) rs) in
  let pv = Array.make !nplanes 0 in
  pv.(oplane) <- lane_mask;
  pvr := pv;
  let ins_l = List.rev !rev_ins in
  let input_slot : (string, int) Hashtbl.t =
    Hashtbl.create (Hashtbl.length p.Prep.input_names)
  in
  Hashtbl.iter
    (fun n _ -> Hashtbl.replace input_slot n (Hashtbl.find tp.Tape.slot_of n))
    p.Prep.input_names;
  let max_limbs =
    Hashtbl.fold
      (fun _ s acc -> max acc ((widths.(s) + 30) / 31))
      input_slot 1
  in
  (* pre-resolve the stimulus plan (data inputs in port order, matching
     Backend.random_stimulus) so run_random's cycle loop does no lookups *)
  let iplan =
    let m = Circuit.main p.Prep.low in
    List.filter_map
      (fun (port : Circuit.port) ->
        match port.Circuit.dir with
        | Circuit.Input
          when port.Circuit.port_name <> "clock"
               && port.Circuit.port_name <> "reset" ->
            let s = Hashtbl.find input_slot port.Circuit.port_name in
            let w = Ty.width port.Circuit.port_ty in
            Some
              (if Array.length planes_of.(s) > 0 then
                 if w = 1 then Pw1 planes_of.(s).(0)
                 else Pplane (planes_of.(s), w)
               else if bad.(s) && not (Eval.Int.fits w) then Prows (s, w)
               else Pstrided (s, w))
        | Circuit.Input | Circuit.Output -> None)
      m.Circuit.ports
    |> Array.of_list
  in
  {
    p;
    slot_of = tp.Tape.slot_of;
    alias = tp.Tape.alias;
    widths;
    planes_of;
    p1;
    wide;
    lanes;
    lane_mask;
    pv;
    sv;
    wv;
    ins = Array.of_list (List.map (fun (i, _, _) -> i) ins_l);
    dsts = Array.of_list (List.map (fun (_, d, _) -> d) ins_l);
    masks = Array.of_list (List.map (fun (_, _, m) -> m) ins_l);
    n_alias = !n_alias;
    n_vec = !n_vec;
    n_scalar = !n_scalar;
    input_slot;
    cover_names = tp.Tape.cover_names;
    cover_slots = tp.Tape.cover_slots;
    counters = Array.make (Array.length tp.Tape.cover_names * lanes) 0;
    cv_names = tp.Tape.cv_names;
    cv_sig = tp.Tape.cv_sig;
    cv_en = tp.Tape.cv_en;
    cv_arr =
      Array.map
        (fun w -> Array.init lanes (fun _ -> Array.make (1 lsl min w 20) 0))
        tp.Tape.cv_widths;
    stop_slots = tp.Tape.stop_slots;
    print_conds = tp.Tape.print_conds;
    print_msgs = tp.Tape.print_msgs;
    print_args = tp.Tape.print_args;
    rs_dst;
    rs_src;
    rs_scratch = Array.make (Array.length rs_dst) 0;
    ri_dst = Array.of_list (List.map (fun (d, _, _) -> d) ri);
    ri_src = Array.of_list (List.map (fun (_, s, _) -> s) ri);
    ri_scratch = Array.make (List.length ri * lanes) 0;
    rb_dst = Array.of_list (List.map (fun (d, _, _) -> d) rb);
    rb_src = Array.of_list (List.map (fun (_, s, _) -> s) rb);
    rb_scratch = Array.make (List.length rb * lanes) (Bv.zero 1);
    mems;
    builtin_db = tp.Tape.builtin_db;
    iplan;
    rowsa = Array.init max_limbs (fun _ -> Array.make 32 0);
    rowsb = Array.init max_limbs (fun _ -> Array.make 32 0);
    tape_dirty = true;
    cycle = 0;
    stopped_mask = 0;
  }

let vectorized_fraction (t : t) : float =
  let n = t.n_alias + t.n_vec + t.n_scalar in
  if n = 0 then 1.0
  else float_of_int (t.n_alias + t.n_vec) /. float_of_int n

let stats (t : t) : string =
  let n = t.n_alias + t.n_vec + t.n_scalar in
  Printf.sprintf
    "%d instructions (%d aliased, %d plane-kernel, %d per-lane), %d slots \
     over %d planes, %d lanes"
    n t.n_alias t.n_vec t.n_scalar (Array.length t.widths)
    (Array.length t.pv) t.lanes

(* One settle pass: every lane of every slot updated in topological
   order. Plane kernels are a few bitwise ops per plane for all lanes at
   once (aliased instructions never appear — they cost nothing); scalar
   instructions loop lanes with the scalar engine's exact semantics,
   reading width-1 slots through the [p1] plane indirection. *)
let run_tape (t : t) =
  let lanes = t.lanes and lm = t.lane_mask in
  let pv = t.pv and sv = t.sv and p1 = t.p1 and wide = t.wide in
  let ins = t.ins and dsts = t.dsts and masks = t.masks in
  let rd l s =
    let p = Array.unsafe_get p1 s in
    if p >= 0 then (Array.unsafe_get pv p lsr l) land 1
    else Array.unsafe_get sv ((s * lanes) + l)
  in
  let wr l d v =
    let p = Array.unsafe_get p1 d in
    if p >= 0 then begin
      let b = 1 lsl l in
      Array.unsafe_set pv p
        ((Array.unsafe_get pv p land lnot b) lor ((v land 1) lsl l))
    end
    else Array.unsafe_set sv ((d * lanes) + l) v
  in
  (* signed ripple compare at the pre-extended width: both operands are
     exact signed W-bit values, so MSB-first lexicographic order with
     the sign rule at the top plane decides every lane at once *)
  let cmp (a : int array) (b : int array) =
    let wl = Array.length a in
    let xa = Array.unsafe_get pv (Array.unsafe_get a (wl - 1))
    and xb = Array.unsafe_get pv (Array.unsafe_get b (wl - 1)) in
    let lt = ref (xa land lnot xb) in
    let eq = ref (lnot (xa lxor xb) land lm) in
    for j = wl - 2 downto 0 do
      let x = Array.unsafe_get pv (Array.unsafe_get a j)
      and y = Array.unsafe_get pv (Array.unsafe_get b j) in
      lt := !lt lor (!eq land lnot x land y);
      eq := !eq land lnot (x lxor y)
    done;
    (!lt, !eq)
  in
  let sxv v sh = (v lsl sh) asr sh in
  let n = Array.length ins in
  for k = 0 to n - 1 do
    let d = Array.unsafe_get dsts k in
    match Array.unsafe_get ins k with
    | VMux (ss, sa, sb) ->
        let sm = Array.unsafe_get pv ss in
        Array.unsafe_set pv d
          ((sm land Array.unsafe_get pv sa)
          lor (lnot sm land Array.unsafe_get pv sb))
    | VNot s -> Array.unsafe_set pv d (lnot (Array.unsafe_get pv s) land lm)
    | VAnd (a, b) ->
        Array.unsafe_set pv d (Array.unsafe_get pv a land Array.unsafe_get pv b)
    | VOr (a, b) ->
        Array.unsafe_set pv d (Array.unsafe_get pv a lor Array.unsafe_get pv b)
    | VXor (a, b) ->
        Array.unsafe_set pv d (Array.unsafe_get pv a lxor Array.unsafe_get pv b)
    | VNxor (a, b) ->
        Array.unsafe_set pv d
          (lnot (Array.unsafe_get pv a lxor Array.unsafe_get pv b) land lm)
    | VAndn (a, b) ->
        Array.unsafe_set pv d
          (Array.unsafe_get pv a land lnot (Array.unsafe_get pv b))
    | VOrn (a, b) ->
        Array.unsafe_set pv d
          ((Array.unsafe_get pv a lor lnot (Array.unsafe_get pv b)) land lm)
    | LMuxC (ss, a, b, w) ->
        let sm = Array.unsafe_get pv ss in
        let nm = lnot sm in
        for j = 0 to w - 1 do
          Array.unsafe_set pv (d + j)
            ((sm land Array.unsafe_get pv (a + j))
            lor (nm land Array.unsafe_get pv (b + j)))
        done
    | LMux (ss, a, b) ->
        let sm = Array.unsafe_get pv ss in
        let nm = lnot sm in
        for j = 0 to Array.length a - 1 do
          Array.unsafe_set pv (d + j)
            ((sm land Array.unsafe_get pv (Array.unsafe_get a j))
            lor (nm land Array.unsafe_get pv (Array.unsafe_get b j)))
        done
    | LNot a ->
        for j = 0 to Array.length a - 1 do
          Array.unsafe_set pv (d + j)
            (lnot (Array.unsafe_get pv (Array.unsafe_get a j)) land lm)
        done
    | LAnd (a, b) ->
        for j = 0 to Array.length a - 1 do
          Array.unsafe_set pv (d + j)
            (Array.unsafe_get pv (Array.unsafe_get a j)
            land Array.unsafe_get pv (Array.unsafe_get b j))
        done
    | LOr (a, b) ->
        for j = 0 to Array.length a - 1 do
          Array.unsafe_set pv (d + j)
            (Array.unsafe_get pv (Array.unsafe_get a j)
            lor Array.unsafe_get pv (Array.unsafe_get b j))
        done
    | LXor (a, b) ->
        for j = 0 to Array.length a - 1 do
          Array.unsafe_set pv (d + j)
            (Array.unsafe_get pv (Array.unsafe_get a j)
            lxor Array.unsafe_get pv (Array.unsafe_get b j))
        done
    | LAdd (a, b) ->
        let c = ref 0 in
        for j = 0 to Array.length a - 1 do
          let x = Array.unsafe_get pv (Array.unsafe_get a j)
          and y = Array.unsafe_get pv (Array.unsafe_get b j) in
          let u = x lxor y in
          Array.unsafe_set pv (d + j) (u lxor !c);
          c := (x land y) lor (!c land u)
        done
    | LSub (a, b) ->
        (* a - b = a + ~b + 1: borrow-free ripple with carry-in 1 *)
        let c = ref lm in
        for j = 0 to Array.length a - 1 do
          let x = Array.unsafe_get pv (Array.unsafe_get a j)
          and yb = lnot (Array.unsafe_get pv (Array.unsafe_get b j)) land lm in
          let u = x lxor yb in
          Array.unsafe_set pv (d + j) (u lxor !c);
          c := (x land yb) lor (!c land u)
        done
    | LNeg a ->
        let c = ref lm in
        for j = 0 to Array.length a - 1 do
          let xb = lnot (Array.unsafe_get pv (Array.unsafe_get a j)) land lm in
          Array.unsafe_set pv (d + j) (xb lxor !c);
          c := xb land !c
        done
    | LEq (a, b) ->
        let ne = ref 0 in
        for j = 0 to Array.length a - 1 do
          ne :=
            !ne
            lor (Array.unsafe_get pv (Array.unsafe_get a j)
                lxor Array.unsafe_get pv (Array.unsafe_get b j))
        done;
        Array.unsafe_set pv d (lnot !ne land lm)
    | LNeq (a, b) ->
        let ne = ref 0 in
        for j = 0 to Array.length a - 1 do
          ne :=
            !ne
            lor (Array.unsafe_get pv (Array.unsafe_get a j)
                lxor Array.unsafe_get pv (Array.unsafe_get b j))
        done;
        Array.unsafe_set pv d !ne
    | LLt (a, b) ->
        let lt, _ = cmp a b in
        Array.unsafe_set pv d lt
    | LLeq (a, b) ->
        let lt, eq = cmp a b in
        Array.unsafe_set pv d (lt lor eq)
    | LGt (a, b) ->
        let lt, eq = cmp a b in
        Array.unsafe_set pv d (lnot (lt lor eq) land lm)
    | LGeq (a, b) ->
        let lt, _ = cmp a b in
        Array.unsafe_set pv d (lnot lt land lm)
    | LAndr a ->
        let acc = ref lm in
        Array.iter (fun p -> acc := !acc land Array.unsafe_get pv p) a;
        Array.unsafe_set pv d !acc
    | LOrr a ->
        let acc = ref 0 in
        Array.iter (fun p -> acc := !acc lor Array.unsafe_get pv p) a;
        Array.unsafe_set pv d !acc
    | LXorr a ->
        let acc = ref 0 in
        Array.iter (fun p -> acc := !acc lxor Array.unsafe_get pv p) a;
        Array.unsafe_set pv d !acc
    | SCopy s ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (rd l s land m)
        done
    | SMux (ss, sa, sb) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((if rd l ss <> 0 then rd l sa else rd l sb) land m)
        done
    | SNot s ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (lnot (rd l s) land m)
        done
    | SAndr (full, s) ->
        for l = 0 to lanes - 1 do
          wr l d (if rd l s = full then 1 else 0)
        done
    | SOrr s ->
        for l = 0 to lanes - 1 do
          wr l d (if rd l s <> 0 then 1 else 0)
        done
    | SXorr s ->
        for l = 0 to lanes - 1 do
          wr l d (Bv.popcount_int (rd l s) land 1)
        done
    | SNeg (sh, s) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (-sxv (rd l s) sh land m)
        done
    | SSext (sh, s) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (sxv (rd l s) sh land m)
        done
    | SShrC (sh, s) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((rd l s lsr sh) land m)
        done
    | SShlC (sh, s) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((rd l s lsl sh) land m)
        done
    | SAdd (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((sxv (rd l a) sha + sxv (rd l b) shb) land m)
        done
    | SSub (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((sxv (rd l a) sha - sxv (rd l b) shb) land m)
        done
    | SMul (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (sxv (rd l a) sha * sxv (rd l b) shb land m)
        done
    | SDiv (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          let dv = sxv (rd l b) shb in
          wr l d ((if dv = 0 then 0 else sxv (rd l a) sha / dv) land m)
        done
    | SRem (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          let dv = sxv (rd l b) shb in
          wr l d ((if dv = 0 then rd l a else sxv (rd l a) sha mod dv) land m)
        done
    | SLt (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha < sxv (rd l b) shb then 1 else 0)
        done
    | SLeq (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha <= sxv (rd l b) shb then 1 else 0)
        done
    | SGt (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha > sxv (rd l b) shb then 1 else 0)
        done
    | SGeq (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha >= sxv (rd l b) shb then 1 else 0)
        done
    | SEq (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha = sxv (rd l b) shb then 1 else 0)
        done
    | SNeq (sha, a, shb, b) ->
        for l = 0 to lanes - 1 do
          wr l d (if sxv (rd l a) sha <> sxv (rd l b) shb then 1 else 0)
        done
    | SAnd (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (sxv (rd l a) sha land sxv (rd l b) shb land m)
        done
    | SOr (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((sxv (rd l a) sha lor sxv (rd l b) shb) land m)
        done
    | SXor (sha, a, shb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d ((sxv (rd l a) sha lxor sxv (rd l b) shb) land m)
        done
    | SCat (a, wb, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          wr l d (((rd l a lsl wb) lor rd l b) land m)
        done
    | SDshl (sha, a, wrw, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          let sh = rd l b in
          wr l d ((if sh >= wrw then 0 else sxv (rd l a) sha lsl sh) land m)
        done
    | SDshr (sha, a, b) ->
        let m = Array.unsafe_get masks k in
        for l = 0 to lanes - 1 do
          let sh = rd l b in
          wr l d (sxv (rd l a) sha asr (if sh > 62 then 62 else sh) land m)
        done
    | SMemRead (mi, ai) -> (
        let m = Array.unsafe_get masks k in
        match t.mems.(mi).lstore with
        | LM_int data ->
            for l = 0 to lanes - 1 do
              let a = rd l ai in
              let row = Array.unsafe_get data l in
              wr l d ((if a < Array.length row then row.(a) else 0) land m)
            done
        | LM_bv data ->
            let drow = t.wv.(d) and zero = t.mems.(mi).lm_zero in
            for l = 0 to lanes - 1 do
              let a = rd l ai in
              let row = Array.unsafe_get data l in
              drow.(l) <- (if a < Array.length row then row.(a) else zero)
            done)
    | SBox f ->
        if Array.unsafe_get wide d then begin
          let row = t.wv.(d) in
          for l = 0 to lanes - 1 do
            row.(l) <- f l
          done
        end
        else begin
          let m = Array.unsafe_get masks k in
          for l = 0 to lanes - 1 do
            wr l d (Bv.to_int_trunc (f l) land m)
          done
        end
  done;
  t.tape_dirty <- false

let clock_edge (t : t) =
  if t.tape_dirty then run_tape t;
  let lanes = t.lanes in
  (* covers: or-fold the point's planes into one fire mask, then harvest
     with a ctz sweep — one increment per (point, fired lane), nothing
     at all for all-quiet points *)
  for k = 0 to Array.length t.cover_slots - 1 do
    let s = t.cover_slots.(k) in
    let base = k * lanes in
    let ps = t.planes_of.(s) in
    if Array.length ps > 0 then begin
      let fire = ref 0 in
      Array.iter (fun p -> fire := !fire lor t.pv.(p)) ps;
      let m = ref !fire in
      while !m <> 0 do
        let b = !m land - !m in
        let l = Bv.ctz_int b in
        t.counters.(base + l) <- Backend.sat_incr t.counters.(base + l);
        m := !m lxor b
      done
    end
    else
      for l = 0 to lanes - 1 do
        if read_lane_bool t l s then
          t.counters.(base + l) <- Backend.sat_incr t.counters.(base + l)
      done
  done;
  for k = 0 to Array.length t.cv_sig - 1 do
    for l = 0 to lanes - 1 do
      if read_lane_bool t l t.cv_en.(k) then begin
        let v = read_lane_int t l t.cv_sig.(k) in
        let arr = t.cv_arr.(k).(l) in
        if v < Array.length arr then arr.(v) <- Backend.sat_incr arr.(v)
      end
    done
  done;
  for k = 0 to Array.length t.stop_slots - 1 do
    let s = t.stop_slots.(k) in
    let ps = t.planes_of.(s) in
    if Array.length ps > 0 then
      Array.iter (fun p -> t.stopped_mask <- t.stopped_mask lor t.pv.(p)) ps
    else
      for l = 0 to lanes - 1 do
        if read_lane_bool t l s then
          t.stopped_mask <- t.stopped_mask lor (1 lsl l)
      done
  done;
  (* prints observe lane 0 only: a 62-fold repeat of every message under
     lockstep stimulus would be noise, and the counts oracle (the thing
     per-lane exactness is for) never involves prints *)
  for k = 0 to Array.length t.print_conds - 1 do
    if read_lane_bool t 0 t.print_conds.(k) then begin
      let args =
        Array.to_list (Array.map (fun s -> read_lane_bv t 0 s) t.print_args.(k))
      in
      !Backend.print_sink (Prep.format_print t.print_msgs.(k) args)
    end
  done;
  (* capture register next-values before anything commits *)
  for i = 0 to Array.length t.rs_src - 1 do
    t.rs_scratch.(i) <- t.pv.(t.rs_src.(i))
  done;
  for i = 0 to Array.length t.ri_src - 1 do
    let s = t.ri_src.(i) and base = i * lanes in
    for l = 0 to lanes - 1 do
      t.ri_scratch.(base + l) <- read_lane_nat t l s
    done
  done;
  for i = 0 to Array.length t.rb_src - 1 do
    (* rows are rebind-only, so scratch may alias them *)
    let row = t.wv.(t.rb_src.(i)) and base = i * lanes in
    for l = 0 to lanes - 1 do
      t.rb_scratch.(base + l) <- row.(l)
    done
  done;
  (* memories: per lane, writes commit before sync-read data latches
     (write-first read-under-write); later ports win *)
  for mi = 0 to Array.length t.mems - 1 do
    let m = t.mems.(mi) in
    match m.lstore with
    | LM_int data ->
        for j = 0 to Array.length m.lwp_en - 1 do
          let en = m.lwp_en.(j) and ad = m.lwp_addr.(j) and dt = m.lwp_data.(j) in
          for l = 0 to lanes - 1 do
            if read_lane_bool t l en then begin
              let a = read_lane_int t l ad in
              let row = data.(l) in
              if a < Array.length row then row.(a) <- read_lane_int t l dt
            end
          done
        done;
        for j = 0 to Array.length m.lsr_addr - 1 do
          let ad = m.lsr_addr.(j) and ds = m.lsr_data.(j) in
          for l = 0 to lanes - 1 do
            let a = read_lane_int t l ad in
            let row = data.(l) in
            write_lane_nat t l ds (if a < Array.length row then row.(a) else 0)
          done
        done
    | LM_bv data ->
        for j = 0 to Array.length m.lwp_en - 1 do
          let en = m.lwp_en.(j) and ad = m.lwp_addr.(j) and dt = m.lwp_data.(j) in
          for l = 0 to lanes - 1 do
            if read_lane_bool t l en then begin
              let a = read_lane_int t l ad in
              let row = data.(l) in
              if a < Array.length row then row.(a) <- read_lane_bv t l dt
            end
          done
        done;
        for j = 0 to Array.length m.lsr_addr - 1 do
          let ad = m.lsr_addr.(j) and ds = m.lsr_data.(j) in
          let drow = t.wv.(ds) in
          for l = 0 to lanes - 1 do
            let a = read_lane_int t l ad in
            let row = data.(l) in
            drow.(l) <- (if a < Array.length row then row.(a) else m.lm_zero)
          done
        done
  done;
  (* commit registers *)
  for i = 0 to Array.length t.rs_dst - 1 do
    t.pv.(t.rs_dst.(i)) <- t.rs_scratch.(i)
  done;
  for i = 0 to Array.length t.ri_dst - 1 do
    let d = t.ri_dst.(i) and base = i * lanes in
    for l = 0 to lanes - 1 do
      write_lane_nat t l d t.ri_scratch.(base + l)
    done
  done;
  for i = 0 to Array.length t.rb_dst - 1 do
    let row = t.wv.(t.rb_dst.(i)) and base = i * lanes in
    for l = 0 to lanes - 1 do
      row.(l) <- t.rb_scratch.(base + l)
    done
  done;
  t.tape_dirty <- true;
  t.cycle <- t.cycle + 1

let step (t : t) n =
  for _ = 1 to n do
    clock_edge t
  done

let cycles (t : t) = t.cycle

let lane_finished (t : t) l = t.stopped_mask land (1 lsl l) <> 0

(* Pokes: no change detection (the plain schedule re-settles the whole
   tape anyway), so they just store and mark the tape dirty. Plane-
   stored targets scatter bit by bit; only input slots are ever poked,
   and inputs always own fresh (unaliased) plane blocks. *)
let poke_slot_lane (t : t) l s v =
  let w = t.widths.(s) in
  let ps = t.planes_of.(s) in
  if Array.length ps > 0 then begin
    let b = 1 lsl l in
    for j = 0 to w - 1 do
      let p = ps.(j) in
      t.pv.(p) <- (t.pv.(p) land lnot b) lor (if Bv.bit v j then b else 0)
    done
  end
  else if t.wide.(s) then t.wv.(s).(l) <- Bv.extend_u v w
  else t.sv.((s * t.lanes) + l) <- Bv.to_int_trunc v land Eval.Int.mask w;
  t.tape_dirty <- true

let poke_lane (t : t) ~lane pname v =
  match Hashtbl.find_opt t.input_slot pname with
  | None -> Backend.error "poke: %s is not an input" pname
  | Some s -> poke_slot_lane t lane s v

let poke_slot_all (t : t) s v =
  let w = t.widths.(s) in
  let ps = t.planes_of.(s) in
  if Array.length ps > 0 then
    for j = 0 to w - 1 do
      t.pv.(ps.(j)) <- (if Bv.bit v j then t.lane_mask else 0)
    done
  else if t.wide.(s) then begin
    let bv = Bv.extend_u v w in
    let row = t.wv.(s) in
    for l = 0 to t.lanes - 1 do
      row.(l) <- bv
    done
  end
  else begin
    let vi = Bv.to_int_trunc v land Eval.Int.mask w in
    let base = s * t.lanes in
    for l = 0 to t.lanes - 1 do
      t.sv.(base + l) <- vi
    done
  end;
  t.tape_dirty <- true

let lane_counts (t : t) l : Counts.t =
  let out = Counts.create () in
  Array.iteri
    (fun k n -> Counts.set out n t.counters.((k * t.lanes) + l))
    t.cover_names;
  Array.iteri
    (fun k n ->
      Array.iteri
        (fun v c -> Counts.set out (Sic_coverage.Cover_values.value_key n v) c)
        t.cv_arr.(k).(l))
    t.cv_names;
  out

(* In-place 32x32 bit-matrix transpose (LSB-first butterfly): on return,
   bit [l] of [a.(j)] is bit [j] of the old [a.(l)]. Rows hold 31-bit
   stimulus limbs, so every intermediate stays far below OCaml's 63-bit
   native-int ceiling. *)
let transpose32 (a : int array) =
  (* five unrolled stages: constant shifts and masks, and the k-walk
     (skip rows whose j-bit is set) becomes simple nested loops *)
  for k = 0 to 15 do
    let ak = Array.unsafe_get a k and akj = Array.unsafe_get a (k + 16) in
    let x = (akj lxor (ak lsr 16)) land 0xFFFF in
    Array.unsafe_set a (k + 16) (akj lxor x);
    Array.unsafe_set a k (ak lxor (x lsl 16))
  done;
  for b = 0 to 1 do
    let base = b lsl 4 in
    for o = 0 to 7 do
      let k = base lor o in
      let ak = Array.unsafe_get a k and akj = Array.unsafe_get a (k + 8) in
      let x = (akj lxor (ak lsr 8)) land 0xFF00FF in
      Array.unsafe_set a (k + 8) (akj lxor x);
      Array.unsafe_set a k (ak lxor (x lsl 8))
    done
  done;
  for b = 0 to 3 do
    let base = b lsl 3 in
    for o = 0 to 3 do
      let k = base lor o in
      let ak = Array.unsafe_get a k and akj = Array.unsafe_get a (k + 4) in
      let x = (akj lxor (ak lsr 4)) land 0x0F0F0F0F in
      Array.unsafe_set a (k + 4) (akj lxor x);
      Array.unsafe_set a k (ak lxor (x lsl 4))
    done
  done;
  for b = 0 to 7 do
    let base = b lsl 2 in
    for o = 0 to 1 do
      let k = base lor o in
      let ak = Array.unsafe_get a k and akj = Array.unsafe_get a (k + 2) in
      let x = (akj lxor (ak lsr 2)) land 0x33333333 in
      Array.unsafe_set a (k + 2) (akj lxor x);
      Array.unsafe_set a k (ak lxor (x lsl 2))
    done
  done;
  for b = 0 to 15 do
    let k = b lsl 1 in
    let ak = Array.unsafe_get a k and akj = Array.unsafe_get a (k + 1) in
    let x = (akj lxor (ak lsr 1)) land 0x55555555 in
    Array.unsafe_set a (k + 1) (akj lxor x);
    Array.unsafe_set a k (ak lxor (x lsl 1))
  done

let run_random (t : t) ~(streams : (unit -> int) array) ~cycles =
  if Array.length streams < t.lanes then
    Backend.error "lanes: %d stimulus streams for %d lanes"
      (Array.length streams) t.lanes;
  let lanes = t.lanes in
  let pv = t.pv and rowsa = t.rowsa and rowsb = t.rowsb in
  let iplan = t.iplan in
  let nin = Array.length iplan in
  let nb0 = min lanes 32 in
  for _ = 1 to cycles do
    for pi = 0 to nin - 1 do
      (match Array.unsafe_get iplan pi with
      | Pw1 p ->
          (* 1-bit input: fuse draw and deposit, no intermediate at all *)
          let acc = ref 0 in
          for l = 0 to lanes - 1 do
            acc := !acc lor (((Array.unsafe_get streams l) () land 1) lsl l)
          done;
          Array.unsafe_set pv p !acc
      | Pplane (ps, w) ->
          (* sliced input: draw every lane's limbs exactly as the
             per-lane Bv.random would (lane-major, limbs ascending, 31
             bits each) straight into the transpose row blocks — row l
             of block i is lane l's i-th draw — then flip each limb
             column into planes *)
          let nl = (w + 30) / 31 in
          for l = 0 to nb0 - 1 do
            let rng = Array.unsafe_get streams l in
            for i = 0 to nl - 1 do
              Array.unsafe_set (Array.unsafe_get rowsa i) l
                (rng () land 0x7FFFFFFF)
            done
          done;
          for l = nb0 to lanes - 1 do
            let rng = Array.unsafe_get streams l in
            for i = 0 to nl - 1 do
              Array.unsafe_set (Array.unsafe_get rowsb i) (l - 32)
                (rng () land 0x7FFFFFFF)
            done
          done;
          for i = 0 to nl - 1 do
            let lo = 31 * i in
            let wl = min 31 (w - lo) in
            let b0 = Array.unsafe_get rowsa i in
            if wl * lanes <= 192 then begin
              (* narrow column: direct gather beats the butterfly *)
              let b1 = Array.unsafe_get rowsb i in
              for j = 0 to wl - 1 do
                let pl = ref 0 in
                for l = 0 to nb0 - 1 do
                  pl :=
                    !pl lor (((Array.unsafe_get b0 l lsr j) land 1) lsl l)
                done;
                for l = nb0 to lanes - 1 do
                  pl :=
                    !pl
                    lor (((Array.unsafe_get b1 (l - 32) lsr j) land 1) lsl l)
                done;
                pv.(ps.(lo + j)) <- !pl
              done
            end
            else begin
              (* rows past the lane count are zeroed before each flip, so
                 every output plane's bits >= lanes are already clear and
                 the merge needs no masking *)
              for l = nb0 to 31 do
                Array.unsafe_set b0 l 0
              done;
              transpose32 b0;
              if lanes > 32 then begin
                let b1 = Array.unsafe_get rowsb i in
                for l = lanes - 32 to 31 do
                  Array.unsafe_set b1 l 0
                done;
                transpose32 b1;
                for j = 0 to wl - 1 do
                  pv.(ps.(lo + j)) <-
                    Array.unsafe_get b0 j lor (Array.unsafe_get b1 j lsl 32)
                done
              end
              else
                for j = 0 to wl - 1 do
                  pv.(ps.(lo + j)) <- Array.unsafe_get b0 j
                done
            end
          done
      | Pstrided (s, w) ->
          let msk = Eval.Int.mask w in
          let nl = (w + 30) / 31 in
          let base = s * lanes in
          for l = 0 to lanes - 1 do
            let rng = streams.(l) in
            let v = ref 0 in
            for i = 0 to nl - 1 do
              v := !v lor ((rng () land 0x7FFFFFFF) lsl (31 * i))
            done;
            t.sv.(base + l) <- !v land msk
          done
      | Prows (s, w) ->
          for l = 0 to lanes - 1 do
            t.wv.(s).(l) <- Bv.random ~width:w streams.(l)
          done);
      ()
    done;
    t.tape_dirty <- true;
    clock_edge t
  done

let to_backend ~name (t : t) : Backend.t =
  Backend.with_telemetry
    {
      Backend.backend_name = name;
      circuit = t.p.Prep.low;
      poke =
        (fun pname v ->
          match Hashtbl.find_opt t.input_slot pname with
          | None -> Backend.error "poke: %s is not an input" pname
          | Some s -> poke_slot_all t s v);
      peek =
        (fun pname ->
          if t.tape_dirty then run_tape t;
          match Hashtbl.find_opt t.slot_of pname with
          | Some s -> read_lane_bv t 0 t.alias.(s)
          | None -> Backend.error "peek: unknown signal %s" pname);
      step = (fun n -> step t n);
      counts = (fun () -> lane_counts t 0);
      cycles = (fun () -> t.cycle);
      finished = (fun () -> t.stopped_mask land t.lane_mask = t.lane_mask);
    }

let create ?builtin_line ?lanes (c : Circuit.t) : Backend.t =
  to_backend ~name:"lanes" (build ?builtin_line ?lanes c)
