(** The engine profiler's artifact: per-tape-instruction hit counts and
    sampled self-times, attributed back to the originating IR statement and
    its source location.

    One profile holds one or more {e designs} (a campaign merges profiles
    from many workers and possibly many designs into one artifact). Per
    design it records the tape shape — one {!row} per tape position, in
    tape order — so merging is positional: two profiles of the same design
    built from the same circuit have identical tapes, and merge is a
    pointwise sum of [hits] and [time_ns].

    [hits] counts {e value-changing} evaluations, not raw executions: the
    number is a property of the value stream, so it is identical across the
    plain and activity-mode schedulers and across engines (compiled vs
    ref_tape) — which is what makes the artifact deterministic (same
    design/seed/cycles ⇒ byte-identical bytes regardless of [--activity]
    or [-j]) and lets a differential test catch a dirty-flag scheduler that
    silently skips work. [time_ns] is sampled (every Nth [run_tape]) and
    zero in counts-only profiles, e.g. everything produced by fleet
    workers.

    The text format follows the house counts-v1/.tl style: a versioned
    header rejected on version mismatch, [#] comments, then per design

    {v
    d <design> <runs> <cycles>
    <idx> <hits> <time_ns> <0|1:is_root> <op> <root> <file:line>
    v}

    where [root] is the defined name of the originating statement (unique
    in the flat low form; [Stmt.def_name]) and the location, which may
    contain spaces, is the rest of the line ([-] when unknown). *)

type row = {
  idx : int;  (** tape position *)
  hits : int;  (** value-changing evaluations *)
  time_ns : int;  (** sampled self-time; 0 in counts-only profiles *)
  is_root : bool;  (** produces the named statement's own value *)
  op : string;  (** instruction mnemonic *)
  root : string;  (** originating statement's defined name *)
  loc : string;  (** [file:line], or [-] when the info is unknown *)
}

type design_profile = {
  design : string;
  runs : int;  (** [run_tape] invocations folded into this profile *)
  cycles : int;
  rows : row array;  (** indexed by tape position *)
}

type t = design_profile list

exception Bad_format of string

let bad_format lineno fmt =
  Printf.ksprintf (fun m -> raise (Bad_format (Printf.sprintf "line %d: %s" lineno m))) fmt

(* ------------------------------------------------------------------ *)
(* Text format                                                          *)
(* ------------------------------------------------------------------ *)

let header = "# sic profile v1"
let header_prefix = "# sic profile"

let to_string (t : t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ^ "\n");
  List.iter
    (fun d ->
      Buffer.add_string buf (Printf.sprintf "d %s %d %d\n" d.design d.runs d.cycles);
      Array.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %d %d %s %s %s\n" r.idx r.hits r.time_ns
               (if r.is_root then 1 else 0)
               r.op r.root r.loc))
        d.rows)
    (List.sort (fun a b -> String.compare a.design b.design) t);
  Buffer.contents buf

let of_string s : t =
  let designs = ref [] in
  let cur = ref None in
  let close () =
    match !cur with
    | None -> ()
    | Some (d, rows) ->
        designs := { d with rows = Array.of_list (List.rev rows) } :: !designs;
        cur := None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if
        String.length line >= String.length header_prefix
        && String.sub line 0 (String.length header_prefix) = header_prefix
      then begin
        if line <> header then
          bad_format lineno "unsupported profile format %S (this reader understands %S)" line
            header
      end
      else if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | "d" :: rest -> (
            close ();
            match rest with
            | [ design; runs; cycles ] -> (
                match (int_of_string_opt runs, int_of_string_opt cycles) with
                | Some runs, Some cycles ->
                    cur := Some ({ design; runs; cycles; rows = [||] }, [])
                | _ -> bad_format lineno "bad design line %S" line)
            | _ -> bad_format lineno "bad design line %S" line)
        | idx :: hits :: time_ns :: is_root :: op :: root :: loc_words -> (
            match
              ( int_of_string_opt idx,
                int_of_string_opt hits,
                int_of_string_opt time_ns,
                is_root )
            with
            | Some idx, Some hits, Some time_ns, ("0" | "1") -> (
                let r =
                  {
                    idx;
                    hits;
                    time_ns;
                    is_root = is_root = "1";
                    op;
                    root;
                    loc = (match loc_words with [] -> "-" | ws -> String.concat " " ws);
                  }
                in
                match !cur with
                | Some (d, rows) -> cur := Some (d, r :: rows)
                | None -> bad_format lineno "instruction row before any 'd' line")
            | _ -> bad_format lineno "bad instruction row %S" line)
        | _ -> bad_format lineno "bad instruction row %S" line)
    (String.split_on_char '\n' s);
  close ();
  List.rev !designs

let output oc (t : t) = output_string oc (to_string t)

let save path (t : t) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Merge                                                                *)
(* ------------------------------------------------------------------ *)

(** Positional pointwise sum per design. Two profiles of the same design
    must have the same tape shape (same instruction at every position) —
    guaranteed when they come from the same build of the same circuit;
    anything else raises {!Bad_format}. *)
let merge (ts : t list) : t =
  let out : (string, design_profile) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (List.iter (fun d ->
         match Hashtbl.find_opt out d.design with
         | None ->
             Hashtbl.replace out d.design { d with rows = Array.copy d.rows };
             order := d.design :: !order
         | Some prev ->
             if Array.length prev.rows <> Array.length d.rows then
               raise
                 (Bad_format
                    (Printf.sprintf "design %s: tape shape mismatch (%d vs %d instructions)"
                       d.design (Array.length prev.rows) (Array.length d.rows)));
             let rows =
               Array.map2
                 (fun (a : row) (b : row) ->
                   if a.idx <> b.idx || a.op <> b.op || a.root <> b.root then
                     raise
                       (Bad_format
                          (Printf.sprintf "design %s: instruction %d mismatch (%s %s vs %s %s)"
                             d.design a.idx a.op a.root b.op b.root));
                   { a with hits = a.hits + b.hits; time_ns = a.time_ns + b.time_ns })
                 prev.rows d.rows
             in
             Hashtbl.replace out d.design
               {
                 prev with
                 runs = prev.runs + d.runs;
                 cycles = prev.cycles + d.cycles;
                 rows;
               }))
    ts;
  List.rev_map (Hashtbl.find out) !order

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)
(* ------------------------------------------------------------------ *)

type stmt_agg = {
  s_root : string;
  s_loc : string;
  s_hits : int;  (** the root instruction's hits — how often the statement's value changed *)
  s_time_ns : int;  (** self-time summed over all instructions of the statement *)
  s_instrs : int;
}

type line_agg = {
  l_loc : string;
  l_hits : int;
  l_time_ns : int;
  l_roots : string list;  (** statements on this line, hottest first *)
}

(* sort hottest first: by sampled time when any, else by hits; name-stable *)
let hotter (ta, ha, na) (tb, hb, nb) =
  if ta <> tb then compare tb ta else if ha <> hb then compare hb ha else String.compare na nb

let by_statement (d : design_profile) : stmt_agg list =
  let tbl : (string, stmt_agg) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun (r : row) ->
      match Hashtbl.find_opt tbl r.root with
      | None ->
          order := r.root :: !order;
          Hashtbl.replace tbl r.root
            {
              s_root = r.root;
              s_loc = r.loc;
              s_hits = (if r.is_root then r.hits else 0);
              s_time_ns = r.time_ns;
              s_instrs = 1;
            }
      | Some a ->
          Hashtbl.replace tbl r.root
            {
              a with
              s_hits = (if r.is_root then a.s_hits + r.hits else a.s_hits);
              s_time_ns = a.s_time_ns + r.time_ns;
              s_instrs = a.s_instrs + 1;
            })
    d.rows;
  List.rev_map (Hashtbl.find tbl) !order
  |> List.sort (fun a b -> hotter (a.s_time_ns, a.s_hits, a.s_root) (b.s_time_ns, b.s_hits, b.s_root))

let by_line (d : design_profile) : line_agg list =
  let stmts = by_statement d in
  let tbl : (string, line_agg) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (s : stmt_agg) ->
      match Hashtbl.find_opt tbl s.s_loc with
      | None ->
          order := s.s_loc :: !order;
          Hashtbl.replace tbl s.s_loc
            {
              l_loc = s.s_loc;
              l_hits = s.s_hits;
              l_time_ns = s.s_time_ns;
              l_roots = [ s.s_root ];
            }
      | Some a ->
          Hashtbl.replace tbl s.s_loc
            {
              a with
              l_hits = a.l_hits + s.s_hits;
              l_time_ns = a.l_time_ns + s.s_time_ns;
              l_roots = s.s_root :: a.l_roots;
            })
    stmts;
  List.rev_map (Hashtbl.find tbl) !order
  |> List.map (fun a -> { a with l_roots = List.rev a.l_roots })
  |> List.sort (fun a b -> hotter (a.l_time_ns, a.l_hits, a.l_loc) (b.l_time_ns, b.l_hits, b.l_loc))

let sampled (d : design_profile) = Array.exists (fun r -> r.time_ns > 0) d.rows

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let si n =
  if n >= 10_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 10_000 then Printf.sprintf "%dk" (n / 1_000)
  else string_of_int n

(** The [sic hotspots] ranked tables: per source line, then per statement. *)
let render ?(top = 20) (t : t) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : design_profile) ->
      let timed = sampled d in
      Buffer.add_string buf
        (Printf.sprintf "design %s: %d instructions, %d runs, %d cycles%s\n" d.design
           (Array.length d.rows) d.runs d.cycles
           (if timed then "" else " (counts only)"));
      let take n l = List.filteri (fun i _ -> i < n) l in
      Buffer.add_string buf
        (Printf.sprintf "\n  hottest source lines (top %d)\n  %4s  %10s  %10s  %s\n" top "rank"
           "self-time" "hits" "location / statements");
      List.iteri
        (fun i (l : line_agg) ->
          let roots =
            match l.l_roots with
            | [] -> ""
            | r :: rest ->
                r ^ (if rest = [] then "" else Printf.sprintf " (+%d)" (List.length rest))
          in
          Buffer.add_string buf
            (Printf.sprintf "  %4d  %9sns  %10s  %s  %s\n" (i + 1) (si l.l_time_ns)
               (si l.l_hits) l.l_loc roots))
        (take top (by_line d));
      Buffer.add_string buf
        (Printf.sprintf "\n  hottest statements (top %d)\n  %4s  %10s  %10s  %6s  %s\n" top
           "rank" "self-time" "hits" "instrs" "statement @ location");
      List.iteri
        (fun i (s : stmt_agg) ->
          Buffer.add_string buf
            (Printf.sprintf "  %4d  %9sns  %10s  %6d  %s @ %s\n" (i + 1) (si s.s_time_ns)
               (si s.s_hits) s.s_instrs s.s_root s.s_loc))
        (take top (by_statement d));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

(** Collapsed-stack output for flamegraph tooling: one
    [design;file:line;statement;op <value>] line per tape instruction,
    where the value is sampled self-time when the profile has timings and
    hit count otherwise. *)
let folded (t : t) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : design_profile) ->
      let timed = sampled d in
      Array.iter
        (fun (r : row) ->
          let v = if timed then r.time_ns else r.hits in
          if v > 0 then
            Buffer.add_string buf
              (Printf.sprintf "%s;%s;%s;%s %d\n" d.design r.loc r.root r.op v))
        d.rows)
    t;
  Buffer.contents buf
