(** Waveform tracing: wrap any backend so every stepped cycle dumps the
    ports (and optionally all registers) to a VCD file — the ordinary
    debugging loop of a software RTL simulator, and the source of the
    recorded traces used by the §5.1 replay methodology. *)

module Bv = Sic_bv.Bv
open Sic_ir

type t = {
  backend : Backend.t;
  writer : Vcd.writer;
  oc : out_channel;
  signals : string list;
  mutable closed : bool;
}

(** Signals worth watching: all ports except clock, plus registers when
    [~regs:true]. *)
let watchlist ?(regs = false) (b : Backend.t) : (string * int) list =
  let m = Circuit.main b.Backend.circuit in
  let ports =
    List.filter_map
      (fun (p : Circuit.port) ->
        if p.Circuit.port_name = "clock" then None
        else Some (p.Circuit.port_name, Ty.width p.Circuit.port_ty))
      m.Circuit.ports
  in
  let registers =
    if not regs then []
    else begin
      let out = ref [] in
      Stmt.iter
        (fun s ->
          match s with
          | Stmt.Reg { name; ty; _ } -> out := (name, Ty.width ty) :: !out
          | _ -> ())
        m.Circuit.body;
      List.rev !out
    end
  in
  ports @ registers

(** [attach ~path b] returns a backend that behaves like [b] but writes
    one VCD sample per stepped cycle. Call [close] when done: it emits one
    final sample (the post-run state) and flushes before closing the
    file. *)
let attach ?(regs = false) ~path (b : Backend.t) : Backend.t * (unit -> unit) =
  let signals = watchlist ~regs b in
  let oc = open_out path in
  let writer = Vcd.create_writer oc ~scope:(Circuit.main b.Backend.circuit).Circuit.module_name signals in
  let t = { backend = b; writer; oc; signals = List.map fst signals; closed = false } in
  let sample () =
    Vcd.sample t.writer (List.map (fun n -> (n, b.Backend.peek n)) t.signals)
  in
  let close () =
    if not t.closed then begin
      t.closed <- true;
      (* the post-run state: every sample so far was taken pre-edge, so the
         effect of the last step is only visible in this final sample *)
      sample ();
      flush t.oc;
      close_out t.oc
    end
  in
  let traced =
    {
      b with
      Backend.backend_name = b.Backend.backend_name ^ "+vcd";
      step =
        (fun n ->
          for _ = 1 to n do
            sample ();
            b.Backend.step 1
          done);
    }
  in
  (traced, close)
