(** Activity-driven simulator — the ESSENT analogue (§3.5): shares the
    compiled tape of {!Compiled} with conditional evaluation turned on
    (instructions whose inputs did not change since the previous cycle
    are skipped, exploiting low activity factors). *)

val create : Sic_ir.Circuit.t -> Backend.t
