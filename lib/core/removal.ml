(** Coverage removal (§5.3).

    FPGA instrumentation is expensive in LUTs and compile time, so cover
    points already exercised by (cheap) software simulation are removed
    before building the FPGA image. Because every backend emits the same
    counts format, the removal set is just the merged software counts
    filtered by a threshold. *)

open Sic_ir

type result = {
  circuit : Circuit.t;
  removed : string list;
  kept : string list;
}

(** Remove covers whose merged count reaches [threshold] (the paper uses
    10). Cover names in [counts] refer to the flattened circuit. *)
let remove_covered ?(threshold = 10) (counts : Counts.t) (c : Circuit.t) : result =
  let removed = ref [] and kept = ref [] in
  let strip (m : Circuit.modul) =
    let body =
      Stmt.map_concat
        (fun s ->
          match s with
          | Stmt.Cover { name; _ } ->
              if Counts.get counts name >= threshold then begin
                removed := name :: !removed;
                []
              end
              else begin
                kept := name :: !kept;
                [ s ]
              end
          | s -> [ s ])
        m.Circuit.body
    in
    { m with Circuit.body }
  in
  (* force the traversal before reading the accumulators *)
  let circuit = { c with Circuit.modules = List.map strip c.Circuit.modules } in
  { circuit; removed = List.rev !removed; kept = List.rev !kept }

(** {1 Waivers (coverage exclusions)}

    Production coverage flows let verification engineers waive points that
    are known-unreachable or out of scope (e.g. debug-only logic). A
    waiver is a pattern over hierarchical cover names: [*] matches any
    substring (including the empty one), [?] matches exactly one
    character, everything else is literal. *)

(** [matches ~pattern name]: glob with [*] and [?] as the metacharacters. *)
let matches ~pattern name =
  let np = String.length pattern and nn = String.length name in
  (* recursion over (pattern index, name index) *)
  let rec go pi ni =
    if pi = np then ni = nn
    else if pattern.[pi] = '*' then go (pi + 1) ni || (ni < nn && go pi (ni + 1))
    else ni < nn && (pattern.[pi] = '?' || pattern.[pi] = name.[ni]) && go (pi + 1) (ni + 1)
  in
  go 0 0

(** Remove every cover whose name matches one of the waiver patterns. *)
let remove_matching ~(patterns : string list) (c : Circuit.t) : result =
  let removed = ref [] and kept = ref [] in
  let strip (m : Circuit.modul) =
    let body =
      Stmt.map_concat
        (fun s ->
          match s with
          | Stmt.Cover { name; _ } ->
              if List.exists (fun pattern -> matches ~pattern name) patterns then begin
                removed := name :: !removed;
                []
              end
              else begin
                kept := name :: !kept;
                [ s ]
              end
          | s -> [ s ])
        m.Circuit.body
    in
    { m with Circuit.body }
  in
  let circuit = { c with Circuit.modules = List.map strip c.Circuit.modules } in
  { circuit; removed = List.rev !removed; kept = List.rev !kept }

(** Waiver file format: one pattern per line, [#] comments, blank lines
    ignored. *)
let parse_waivers (s : string) : string list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let load_waivers path : string list =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_waivers (really_input_string ic (in_channel_length ic)))

(** Restrict a counts map to the covers a circuit still contains (useful
    after removal, for reporting). *)
let restrict (c : Circuit.t) (counts : Counts.t) : Counts.t =
  let out = Counts.create () in
  List.iter
    (fun m ->
      List.iter (fun name -> Counts.set out name (Counts.get counts name)) (Circuit.covers_of m))
    c.Circuit.modules;
  out
