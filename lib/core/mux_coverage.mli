(** Mux toggle coverage — the rfuzz feedback metric reimplemented for the
    fuzzing comparison of §5.4: two covers per structurally distinct mux
    select, one per polarity. *)

type point = { base : string; cover_true : string; cover_false : string }
type db = point list

val instrument : Sic_ir.Circuit.t -> Sic_ir.Circuit.t * db
(** Requires a flat, lowered circuit. *)

val pass : db ref -> Sic_passes.Pass.t
val render : db -> Counts.t -> string
