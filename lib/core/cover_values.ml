(** The [cover-values] extension primitive (§6).

    Covering every value of a w-bit signal with ordinary cover statements
    needs 2^w of them — the exponential blowup of Figure 12. Backends in
    this repo implement [cover-values] natively with an array of counters;
    this module provides the naive lowering (for the Figure 12 comparison
    and for backends without native support) and the shared key format
    that makes native and lowered counts comparable. *)

open Sic_ir
module Pass = Sic_passes.Pass
module Bv = Sic_bv.Bv

let pass_name = "expand-cover-values"

(** Counts key for value [v] of cover-values statement [name]. Backends
    with native support report the same keys, so reports and merging are
    oblivious to which implementation ran. (Plain identifier characters
    only, so expanded circuits still round-trip through the printer and
    parser.) *)
let value_key name v = Printf.sprintf "%s__v%d" name v

(** Replace every [cover-values] with [2^w] plain covers. *)
let expand (c : Circuit.t) : Circuit.t =
  let expand_module (m : Circuit.modul) =
    let env = Circuit.build_env m in
    let ty_of = Circuit.lookup_of env in
    let body =
      Stmt.map_concat
        (fun s ->
          match s with
          | Stmt.CoverValues { name; signal; en; info } ->
              let w = Ty.width (Expr.type_of ty_of signal) in
              if w > 20 then
                Pass.error ~pass:pass_name
                  "cover-values %s on a %d-bit signal would expand to 2^%d covers" name w w;
              List.init (1 lsl w) (fun v ->
                  Stmt.Cover
                    {
                      name = value_key name v;
                      pred = Expr.and_ en (Expr.eq_ signal (Expr.u_lit ~width:w v));
                      info;
                    })
          | s -> [ s ])
        m.Circuit.body
    in
    { m with Circuit.body }
  in
  { c with Circuit.modules = List.map expand_module c.Circuit.modules }

let pass = Pass.make pass_name expand
