(** Coverage removal (§5.3): drop cover statements already exercised by
    cheaper (software) runs before building the expensive FPGA image. *)

open Sic_ir

type result = {
  circuit : Circuit.t;
  removed : string list;
  kept : string list;
}

val remove_covered : ?threshold:int -> Counts.t -> Circuit.t -> result
(** Remove covers whose count reaches [threshold] (default 10, as in the
    paper). *)

val restrict : Circuit.t -> Counts.t -> Counts.t
(** Keep only the counts of covers the circuit still contains. *)

(** {1 Waivers (coverage exclusions)}

    The pattern language is a deliberately small glob over hierarchical
    cover names:

    - [*] matches any substring, including the empty one;
    - [?] matches exactly one character (so [cover_?] waives [cover_0]
      but not [cover_10] or [cover_]);
    - every other character, including [.] path separators, is literal.

    A pattern must match the {e whole} name: [icache.*] waives everything
    under [icache.] but not [dcache.state]. *)

val matches : pattern:string -> string -> bool
(** Glob with [*] and [?] as the only metacharacters (see above). *)

val remove_matching : patterns:string list -> Circuit.t -> result
val parse_waivers : string -> string list
(** One pattern per line; [#] comments. *)

val load_waivers : string -> string list
