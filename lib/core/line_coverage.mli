(** Branch and line coverage (§4.1).

    The instrumentation pass runs on the high-form IR (before
    when-lowering): every branch arm gets a [cover] with predicate 1,
    which lowering conjoins with the arm's path predicate. Metadata maps
    each cover to the source lines its arm dominates; the report
    generator joins that with any backend's counts map. *)

open Sic_ir

type arm = Then | Else | Root

type branch = {
  cover_name : string;  (** module-unique name ([l_<Module>_<n>]) *)
  module_name : string;
  arm : arm;
  branch_info : Info.t;  (** locator of the branch itself *)
  lines : (string * int) list;  (** (file, line) of the arm's statements *)
}

type db = branch list

val instrument : Circuit.t -> Circuit.t * db
(** Instrument every module of a high-form circuit. *)

val pass : db ref -> Sic_passes.Pass.t
(** Pass-shaped wrapper; stores the metadata in the ref. *)

val local_name : string -> string
(** Strip the instance path from a flattened cover name. *)

type line_report = {
  per_line : ((string * int) * int) list;  (** (file, line) -> count *)
  lines_total : int;
  lines_covered : int;
  branches_total : int;
  branches_covered : int;
  never_covered : branch list;
}

val report : db -> Counts.t -> line_report
(** Counts from multiple instances of a module are summed per source
    line. *)

val arm_name : arm -> string

val render : ?with_sources:bool -> db -> Counts.t -> string
(** ASCII report; with [~with_sources:true], annotates the original
    source lines when the files are readable. *)

(** {1 Per-module / per-instance rollup} *)

type module_summary = {
  summary_module : string;
  instances : (string * int * int) list;  (** path, covered, total *)
  module_covered : int;
  module_total : int;
}

val module_summaries : db -> Counts.t -> module_summary list
val render_module_summary : db -> Counts.t -> string
