(** The [cover-values] extension primitive (§6): one counter per possible
    value of a signal. Backends implement it natively with an array of
    counters; [expand] provides the naive exponential lowering of
    Figure 12 for comparison and for backends without native support. *)

val value_key : string -> int -> string
(** Counts key for value [v] of statement [name]; shared by native and
    expanded implementations so their counts are comparable. *)

val expand : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
(** Replace every [cover-values] over a w-bit signal with [2^w] plain
    covers. Rejects signals wider than 20 bits. *)

val pass : Sic_passes.Pass.t
