(** Mux toggle coverage — the rfuzz feedback metric the paper reimplements
    for the fuzzing comparison of §5.4. Every distinct mux select signal in
    the lowered circuit gets two cover statements, one for each polarity,
    so the fuzzer is rewarded for steering control-flow both ways. *)

open Sic_ir
module Pass = Sic_passes.Pass

let pass_name = "mux-coverage"

type point = { base : string; cover_true : string; cover_false : string }

type db = point list

let instrument (c : Circuit.t) : Circuit.t * db =
  if not (Sic_passes.Compile.is_low_form c) then
    Pass.error ~pass:pass_name "mux coverage requires a flat, lowered circuit";
  let m = Circuit.main c in
  (* collect structurally distinct select expressions, in first-seen order *)
  let seen = Hashtbl.create 64 in
  let selects = ref [] in
  let rec scan (e : Expr.t) =
    match e with
    | Expr.Mux (s, a, b) ->
        let key = Printer.expr_to_string s in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          selects := s :: !selects
        end;
        scan s;
        scan a;
        scan b
    | Expr.Unop (_, x) | Expr.Intop (_, _, x) | Expr.Bits (x, _, _) -> scan x
    | Expr.Binop (_, x, y) ->
        scan x;
        scan y
    | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> ()
  in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { expr; _ } | Stmt.Connect { expr; _ } -> scan expr
      | Stmt.Cover { pred; _ } -> scan pred
      | Stmt.Reg { reset = Some (r, i); _ } ->
          scan r;
          scan i
      | Stmt.CoverValues { signal; en; _ } ->
          scan signal;
          scan en
      | Stmt.Stop { cond; _ } -> scan cond
      | Stmt.Print { cond; args; _ } ->
          scan cond;
          List.iter scan args
      | Stmt.Reg _ | Stmt.Wire _ | Stmt.Mem _ | Stmt.Inst _ | Stmt.When _ -> ())
    m.Circuit.body;
  let ns = Namespace.of_module m in
  let db = ref [] in
  let stmts = ref [] in
  List.iteri
    (fun i sel ->
      let base = Printf.sprintf "mux_%d" i in
      let sel_node = Namespace.fresh ns ("_" ^ base ^ "_sel") in
      stmts := Stmt.Node { name = sel_node; expr = sel; info = Info.unknown } :: !stmts;
      let cover_true = Namespace.fresh ns (base ^ "_T") in
      let cover_false = Namespace.fresh ns (base ^ "_F") in
      stmts :=
        Stmt.Cover { name = cover_true; pred = Expr.Ref sel_node; info = Info.unknown }
        :: !stmts;
      stmts :=
        Stmt.Cover
          {
            name = cover_false;
            pred = Expr.Unop (Expr.Not, Expr.Ref sel_node);
            info = Info.unknown;
          }
        :: !stmts;
      db := { base; cover_true; cover_false } :: !db)
    (List.rev !selects);
  let m' = { m with Circuit.body = m.Circuit.body @ List.rev !stmts } in
  ({ c with Circuit.modules = [ m' ] }, List.rev !db)

let pass (db_out : db ref) =
  Pass.make pass_name (fun c ->
      let c, db = instrument c in
      db_out := db;
      c)

let render (db : db) (counts : Counts.t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== mux toggle coverage ===\n";
  let both =
    List.filter
      (fun p -> Counts.get counts p.cover_true > 0 && Counts.get counts p.cover_false > 0)
      db
  in
  Buffer.add_string buf
    (Printf.sprintf "selects toggled both ways: %d/%d\n" (List.length both) (List.length db));
  Buffer.contents buf
