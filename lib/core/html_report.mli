(** HTML report generation — the "interactive HTML reports" the paper
    names as the natural report-generator extension (§4, Table 1
    discussion). One self-contained page per run (or per database):
    summary tiles, a line coverage table with per-source-file annotated
    listings, sections for whichever other metrics were collected, and an
    optional coverage-convergence chart. Entirely simulator-independent:
    the input is the same metadata + counts map every backend produces. *)

val esc : string -> string
(** HTML-escape ampersands, angle brackets and quotes. *)

val render :
  ?title:string ->
  ?source_root:string ->
  ?line:Line_coverage.db ->
  ?toggle:Toggle_coverage.db ->
  ?fsm:Fsm_coverage.db ->
  ?rv:Ready_valid_coverage.db ->
  ?timelines:(string * Timeline.t) list ->
  Counts.t ->
  string
(** The full page as one self-contained string (inline CSS, no external
    assets). Each metric section appears only when its database is
    passed; [source_root] anchors relative source paths for the annotated
    listings; [timelines] adds a convergence chart (label -> curve, e.g.
    one per campaign run). *)

val save :
  string ->
  ?title:string ->
  ?source_root:string ->
  ?line:Line_coverage.db ->
  ?toggle:Toggle_coverage.db ->
  ?fsm:Fsm_coverage.db ->
  ?rv:Ready_valid_coverage.db ->
  ?timelines:(string * Timeline.t) list ->
  Counts.t ->
  unit
(** [save path ... counts] writes {!render}'s output to [path]. *)
