(** HTML report generation — the "interactive HTML reports" the paper
    names as the natural report-generator extension (§4, Table 1
    discussion). One self-contained page per run (or per database):
    summary tiles, a line coverage table with per-source-file annotated
    listings, sections for whichever other metrics were collected, and an
    optional coverage-convergence chart. Entirely simulator-independent:
    the input is the same metadata + counts map every backend produces. *)

val esc : string -> string
(** HTML-escape ampersands, angle brackets and quotes. *)

type line_heat = {
  heat_file : string;
  heat_line : int;
  heat_hits : int;  (** value-changing evaluations attributed to the line *)
  heat_time_ns : int;  (** sampled engine self-time; 0 when counts-only *)
}
(** Engine-profiler heat for one source line, as plain data — this module
    does not depend on the simulator library, so callers convert their
    profile artifacts into this shape. *)

val render :
  ?title:string ->
  ?source_root:string ->
  ?line:Line_coverage.db ->
  ?toggle:Toggle_coverage.db ->
  ?fsm:Fsm_coverage.db ->
  ?rv:Ready_valid_coverage.db ->
  ?timelines:(string * Timeline.t) list ->
  ?profile:line_heat list ->
  ?excluded:string list ->
  Counts.t ->
  string
(** The full page as one self-contained string (inline CSS, no external
    assets). Each metric section appears only when its database is
    passed; [source_root] anchors relative source paths for the annotated
    listings; [timelines] adds a convergence chart (label -> curve, e.g.
    one per campaign run); [profile] tints the annotated listings with a
    per-line heat column (engine self-time, or hit counts when the
    profile carries no timing); [excluded] names formally-proven-
    unreachable points, which render greyed out in a dedicated
    cover-point table (instead of tinting as uncovered), are dropped
    from the summary denominator, and get an exclusion footnote. *)

val save :
  string ->
  ?title:string ->
  ?source_root:string ->
  ?line:Line_coverage.db ->
  ?toggle:Toggle_coverage.db ->
  ?fsm:Fsm_coverage.db ->
  ?rv:Ready_valid_coverage.db ->
  ?timelines:(string * Timeline.t) list ->
  ?profile:line_heat list ->
  ?excluded:string list ->
  Counts.t ->
  unit
(** [save path ... counts] writes {!render}'s output to [path]. *)
