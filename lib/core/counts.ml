(** The simulator-independent coverage interface (§3).

    Every backend reports coverage as a map from the cover statement's name
    (including its instance path) to a non-negative, saturating count. This
    module is that map, its on-disk interchange format, and the merge
    operation the paper gets "by construction" (§5.3): since all backends
    emit the same format, merging is a pointwise saturating sum. *)

type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let get (t : t) name = Option.value ~default:0 (Hashtbl.find_opt t name)

let set (t : t) name v = Hashtbl.replace t name v

(** Saturating addition — mirrors the saturating hardware counters. *)
let sat_add a b = if a > max_int - b then max_int else a + b

let add (t : t) name v = Hashtbl.replace t name (sat_add (get t name) v)

let incr (t : t) name = add t name 1

let names (t : t) = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let to_sorted_list (t : t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let of_list l =
  let t = create () in
  List.iter (fun (k, v) -> add t k v) l;
  t

let total_points (t : t) = Hashtbl.length t

let covered_points ?(threshold = 1) (t : t) =
  Hashtbl.fold (fun _ v acc -> if v >= threshold then acc + 1 else acc) t 0

(** Names covered at least [threshold] times — the §5.3 removal set. *)
let covered ?(threshold = 1) (t : t) =
  Hashtbl.fold (fun k v acc -> if v >= threshold then k :: acc else acc) t []
  |> List.sort String.compare

(** Pointwise saturating merge. Missing keys count as zero, so results from
    backends that saw different instrumentation subsets merge cleanly. *)
let merge (ts : t list) : t =
  let out = create () in
  List.iter (fun t -> Hashtbl.iter (fun k v -> add out k v) t) ts;
  out

(** Pointwise maximum. Unlike {!merge} this is idempotent, so it is the
    right combinator when the same run's counts may be delivered more than
    once (worker retries, at-least-once collection in [Sic_fleet]). *)
let union_max (ts : t list) : t =
  let out = create () in
  List.iter
    (fun t ->
      Hashtbl.iter (fun k v -> if (not (Hashtbl.mem out k)) || v > get out k then set out k v) t)
    ts;
  out

let equal (a : t) (b : t) = to_sorted_list a = to_sorted_list b

type diff = {
  newly_covered : string list;  (** zero (or absent) before, nonzero after *)
  lost : string list;  (** nonzero before, zero after *)
  only_before : string list;  (** points absent from the new run *)
  only_after : string list;
}

(** Compare two runs' coverage (e.g. before/after a test-suite change, or
    software vs FPGA contribution in the §5.3 flow). *)
let diff ~(before : t) ~(after : t) : diff =
  let keys =
    List.sort_uniq String.compare (names before @ names after)
  in
  let mem t k = Hashtbl.mem t k in
  {
    newly_covered =
      List.filter (fun k -> get before k = 0 && get after k > 0) keys;
    lost = List.filter (fun k -> get before k > 0 && get after k = 0 && mem after k) keys;
    only_before = List.filter (fun k -> mem before k && not (mem after k)) keys;
    only_after = List.filter (fun k -> mem after k && not (mem before k)) keys;
  }

let render_diff (d : diff) : string =
  let buf = Buffer.create 256 in
  let section title items =
    if items <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s (%d):\n" title (List.length items));
      List.iter (fun k -> Buffer.add_string buf ("  " ^ k ^ "\n")) items
    end
  in
  section "newly covered" d.newly_covered;
  section "lost coverage" d.lost;
  section "points only in the first run" d.only_before;
  section "points only in the second run" d.only_after;
  if Buffer.length buf = 0 then "no coverage changes\n" else Buffer.contents buf

(** {1 Interchange format}

    One line per cover point: [<count> <name>]. Lines starting with [#]
    are comments. This is the format the report generators consume,
    independent of which simulator produced it. *)

(* The only header this implementation understands. Other "# sic coverage
   counts vN" lines are rejected rather than skipped as comments, so a
   future format bump cannot be silently misread as an empty/partial map
   (the coverage database versions its counts files through this). *)
let header = "# sic coverage counts v1"

let header_prefix = "# sic coverage counts"

let output oc (t : t) =
  output_string oc (header ^ "\n");
  List.iter (fun (k, v) -> Printf.fprintf oc "%d %s\n" v k) (to_sorted_list t)

let save path (t : t) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc t)

exception Bad_format of string

let bad_format lineno fmt =
  Printf.ksprintf (fun m -> raise (Bad_format (Printf.sprintf "line %d: %s" lineno m))) fmt

let parse_line lineno line =
  let line = String.trim line in
  if String.length line >= String.length header_prefix
     && String.sub line 0 (String.length header_prefix) = header_prefix
  then
    if line = header then None
    else bad_format lineno "unsupported counts format %S (this reader understands %S)" line header
  else if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> bad_format lineno "expected '<count> <name>', got %S" line
    | Some i -> (
        let count = String.sub line 0 i in
        let name = String.sub line (i + 1) (String.length line - i - 1) in
        match int_of_string_opt count with
        | Some c when c >= 0 -> Some (name, c)
        | Some _ | None -> bad_format lineno "bad count in %S" line)

let of_string s =
  let t = create () in
  List.iteri
    (fun i line ->
      match parse_line (i + 1) line with Some (n, c) -> add t n c | None -> ())
    (String.split_on_char '\n' s);
  t

let to_string (t : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ^ "\n");
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%d %s\n" v k)) (to_sorted_list t);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
