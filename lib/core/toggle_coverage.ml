(** Toggle coverage (§4.2).

    Runs on the optimized low-form (flat, when-free) circuit. For every
    selected signal the pass adds a register holding the previous value, an
    xor detecting per-bit changes, a first-cycle disable register, and one
    cover statement per bit. Signals that the global alias analysis proves
    always-equal are instrumented once, through their representative — the
    optimization the paper calls out as necessary for performance (e.g. a
    global reset fanned out to every module). *)

open Sic_ir
module Pass = Sic_passes.Pass

let pass_name = "toggle-coverage"

type category = Io | Register | Wire | Mem_port

type sel = { sig_name : string; category : category; width : int }

type edge = Any | Rising | Falling

type point = {
  cover_name : string;
  signal : string;  (** representative actually instrumented *)
  bit : int;
  edge : edge;
  aliases : string list;  (** other signals covered via this one *)
}

type db = {
  points : point list;
  selected : sel list;
  alias_groups : Sic_passes.Alias.groups;
}

let default_categories = [ Io; Register; Wire; Mem_port ]

let category_name = function
  | Io -> "io"
  | Register -> "reg"
  | Wire -> "wire"
  | Mem_port -> "mem"

(* Collect instrumentable signals of the main module by category. *)
let select (categories : category list) (m : Circuit.modul) : sel list =
  let want c = List.mem c categories in
  let out = ref [] in
  let add sig_name category ty =
    match ty with
    | Ty.Clock -> ()
    | Ty.UInt w | Ty.SInt w ->
        if w > 0 then out := { sig_name; category; width = w } :: !out
  in
  if want Io then
    List.iter
      (fun (p : Circuit.port) ->
        if p.Circuit.port_name <> "clock" then add p.Circuit.port_name Io p.Circuit.port_ty)
      m.Circuit.ports;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Reg { name; ty; _ } when want Register -> add name Register ty
      | Stmt.Wire { name; ty; _ } when want Wire -> add name Wire ty
      | Stmt.Mem { mem; _ } when want Mem_port ->
          List.iter
            (fun { Stmt.rp_name } ->
              add (mem.Stmt.mem_name ^ "." ^ rp_name ^ ".data") Mem_port mem.Stmt.mem_data)
            mem.Stmt.mem_readers
      | Stmt.Reg _ | Stmt.Wire _ | Stmt.Mem _ | Stmt.Node _ | Stmt.Inst _
      | Stmt.Connect _ | Stmt.When _ | Stmt.Cover _ | Stmt.CoverValues _
      | Stmt.Stop _ | Stmt.Print _ -> ())
    m.Circuit.body;
  List.rev !out

(** Instrument toggle coverage. With [~edges:true], rising (0→1) and
    falling (1→0) transitions are counted separately — the "simple
    extension" of §4.2 using two cover statements per bit instead of
    one. [~use_alias:false] disables the alias-group deduplication
    (instrumenting every selected signal), exposing the cost the paper's
    global alias analysis exists to avoid — used by the ablation bench. *)
let instrument ?(categories = default_categories) ?(edges = false) ?(use_alias = true)
    (c : Circuit.t) : Circuit.t * db =
  if not (Sic_passes.Compile.is_low_form c) then
    Pass.error ~pass:pass_name "toggle coverage requires a flat, lowered circuit";
  let m = Circuit.main c in
  let groups = if use_alias then Sic_passes.Alias.analyze c else [] in
  let rep = Sic_passes.Alias.representative groups in
  let selected = select categories m in
  (* map representative -> all selected aliases; instrument the rep only.
     The rep may itself be an un-selected node — instrumenting it still
     covers the selected signals, since they always carry the same value. *)
  let by_rep : (string, sel list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun s ->
      let r = rep s.sig_name in
      (match Hashtbl.find_opt by_rep r with
      | None ->
          order := r :: !order;
          Hashtbl.replace by_rep r [ s ]
      | Some l -> Hashtbl.replace by_rep r (s :: l)))
    selected;
  let ns = Namespace.of_module m in
  let env = Circuit.build_env m in
  let ty_of = Circuit.lookup_of env in
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  let points = ref [] in
  (* enable register: 0 in the first cycle, 1 afterwards *)
  let en = Namespace.fresh ns "_t_en" in
  emit (Stmt.Reg { name = en; ty = Ty.UInt 1; reset = None; info = Info.unknown });
  emit (Stmt.Connect { loc = en; expr = Expr.true_; info = Info.unknown });
  List.iter
    (fun r ->
      let sels = Hashtbl.find by_rep r in
      let ty = ty_of r in
      let w = Ty.width ty in
      let prev = Namespace.fresh ns ("_t_prev_" ^ r) in
      emit (Stmt.Reg { name = prev; ty; reset = None; info = Info.unknown });
      emit (Stmt.Connect { loc = prev; expr = Expr.Ref r; info = Info.unknown });
      let changed = Namespace.fresh ns ("_t_chg_" ^ r) in
      emit
        (Stmt.Node
           { name = changed; expr = Expr.Binop (Expr.Xor, Expr.Ref r, Expr.Ref prev); info = Info.unknown });
      let aliases =
        List.filter_map
          (fun s -> if String.equal s.sig_name r then None else Some s.sig_name)
          sels
      in
      let chg_bit bit = Expr.Bits (Expr.Ref changed, bit, bit) in
      let cur_bit bit = Expr.Bits (Expr.Ref r, bit, bit) in
      let add_point ~suffix ~edge ~pred bit =
        let cover_name = Namespace.fresh ns (Printf.sprintf "t_%s_%d%s" r bit suffix) in
        points := { cover_name; signal = r; bit; edge; aliases } :: !points;
        emit
          (Stmt.Cover
             { name = cover_name; pred = Expr.Binop (Expr.And, Expr.Ref en, pred); info = Info.unknown })
      in
      for bit = 0 to w - 1 do
        if edges then begin
          (* rising: changed and now 1; falling: changed and now 0 *)
          add_point ~suffix:"_rise" ~edge:Rising
            ~pred:(Expr.Binop (Expr.And, chg_bit bit, cur_bit bit))
            bit;
          add_point ~suffix:"_fall" ~edge:Falling
            ~pred:
              (Expr.Binop
                 (Expr.And, chg_bit bit, Expr.Unop (Expr.Not, cur_bit bit)))
            bit
        end
        else add_point ~suffix:"" ~edge:Any ~pred:(chg_bit bit) bit
      done)
    (List.rev !order);
  let m' = { m with Circuit.body = m.Circuit.body @ List.rev !stmts } in
  ( { c with Circuit.modules = [ m' ] },
    { points = List.rev !points; selected; alias_groups = groups } )

let pass ?categories ?edges (db_out : db ref) =
  Pass.make pass_name (fun c ->
      let c, db = instrument ?categories ?edges c in
      db_out := db;
      c)

(** {1 Report generation} *)

type toggle_report = {
  bits_total : int;
  bits_toggled : int;
  stuck : (string * int) list;  (** signal, bit — never toggled *)
  per_signal : (string * int * int) list;  (** signal, toggled, width *)
}

let report (db : db) (counts : Counts.t) : toggle_report =
  let toggled p = Counts.get counts p.cover_name > 0 in
  let bits_total = List.length db.points in
  let bits_toggled = List.length (List.filter toggled db.points) in
  let stuck =
    List.filter_map (fun p -> if toggled p then None else Some (p.signal, p.bit)) db.points
  in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let t, w = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl p.signal) in
      Hashtbl.replace tbl p.signal ((if toggled p then t + 1 else t), w + 1))
    db.points;
  let per_signal =
    Hashtbl.fold (fun s (t, w) acc -> (s, t, w) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  { bits_total; bits_toggled; stuck; per_signal }

let render (db : db) (counts : Counts.t) : string =
  let r = report db counts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "=== toggle coverage ===\n";
  Buffer.add_string buf
    (Printf.sprintf "bits toggled: %d/%d (%.1f%%)\n" r.bits_toggled r.bits_total
       (if r.bits_total = 0 then 100.0
        else 100.0 *. float_of_int r.bits_toggled /. float_of_int r.bits_total));
  List.iter
    (fun (s, t, w) ->
      Buffer.add_string buf (Printf.sprintf "  %-40s %d/%d\n" s t w))
    r.per_signal;
  if r.stuck <> [] then begin
    Buffer.add_string buf "stuck bits:\n";
    List.iter
      (fun (s, b) -> Buffer.add_string buf (Printf.sprintf "  %s[%d]\n" s b))
      r.stuck
  end;
  Buffer.contents buf
