(** Coverage-convergence timelines: how many cover points a run had hit
    after each unit of work — the per-run record behind the paper's
    coverage-over-time plots. Sampled by the simulation backends, the
    fuzzer and the modelled-FPGA driver; persisted per run by the
    coverage database in a versioned text format (like {!Counts}). *)

type t = {
  total : int;  (** instrumented cover points (0 when unknown) *)
  samples : (int * int) list;
      (** (at, covered) in the run's own budget unit — simulated cycles,
          fuzz executions — with strictly increasing [at] *)
}

val empty : t
val final_covered : t -> int
val last_at : t -> int

val saturation_at : ?frac:float -> t -> int option
(** Earliest [at] reaching [frac] (default 0.99) of the final coverage —
    where the curve flattens. [None] when nothing was ever covered. *)

(** {1 Building} *)

type builder

val builder : unit -> builder

val record : builder -> at:int -> covered:int -> unit
(** Append a sample. A repeated [at] replaces the previous sample; a
    decreasing [at] raises [Invalid_argument]. *)

val build : ?total:int -> builder -> t

(** {1 Interchange format}

    Line-oriented text: the versioned [# sic coverage timeline v1] header,
    a [total N] line, then one [<at> <covered>] line per sample. [#]
    comments and blank lines are ignored; an unknown [# sic coverage
    timeline vN] header raises {!Bad_format} instead of being skipped. *)

exception Bad_format of string
(** Carries a [line N:] prefix locating the offending line. *)

val to_string : t -> string
val of_string : string -> t
val output : out_channel -> t -> unit
val save : string -> t -> unit
val load : string -> t

(** {1 Rendering} *)

val sparkline : ?width:int -> t -> string
(** Fixed-width ASCII curve (space = 0% up to [@] = 100%), used by
    [sic db report --timeline]. *)
