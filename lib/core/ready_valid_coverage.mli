(** Ready/valid coverage (§4.4): one cover per DecoupledIO-style bundle,
    counting fired transfers. Bundles come from the DSL's [Decoupled]
    annotations plus a structural [<p>_ready]/[<p>_valid] scan. *)

type point = { cover_name : string; prefix : string; from_annotation : bool }
type db = point list

val instrument : Sic_ir.Circuit.t -> Sic_ir.Circuit.t * db
(** Requires a flat, lowered circuit. *)

val pass : db ref -> Sic_passes.Pass.t
val render : db -> Counts.t -> string
