(** Coverage-convergence timelines.

    The paper's evaluation is a convergence study: coverage per unit of
    work, across backends. A timeline is the minimal record of that curve
    for one run — [(at, covered)] samples, where [at] is the run's own
    budget unit (simulated cycles, fuzz executions, scan periods) and
    [covered] is the number of cover points hit at least once by then —
    plus the total number of points, so curves from differently sized
    instrumentations still render as percentages.

    Like {!Counts}, timelines have a versioned line-oriented text format so
    the coverage database can persist one per run and any v1 reader can
    consume files written by any producer. *)

type t = {
  total : int;  (** instrumented cover points (0 when unknown) *)
  samples : (int * int) list;  (** (at, covered), strictly increasing [at] *)
}

let empty = { total = 0; samples = [] }

let final_covered t =
  match List.rev t.samples with (_, c) :: _ -> c | [] -> 0

let last_at t = match List.rev t.samples with (a, _) :: _ -> a | [] -> 0

(** The earliest [at] whose coverage reaches [frac] of the final coverage —
    "where the curve flattens". [None] for empty or all-zero timelines. *)
let saturation_at ?(frac = 0.99) t =
  let final = final_covered t in
  if final <= 0 then None
  else
    let target = int_of_float (Float.ceil (frac *. float_of_int final)) in
    Option.map fst (List.find_opt (fun (_, c) -> c >= target) t.samples)

(* ------------------------------------------------------------------ *)
(* Building                                                             *)
(* ------------------------------------------------------------------ *)

type builder = { mutable rev_samples : (int * int) list }

let builder () = { rev_samples = [] }

(** Append a sample. A repeated [at] replaces the previous sample (the
    final partial-chunk sample may land on an exact sampling boundary);
    an [at] that goes backwards is rejected — timelines are monotonic in
    work by construction. *)
let record b ~at ~covered =
  match b.rev_samples with
  | (a, _) :: rest when a = at -> b.rev_samples <- (at, covered) :: rest
  | (a, _) :: _ when a > at ->
      invalid_arg (Printf.sprintf "Timeline.record: at %d after %d" at a)
  | _ -> b.rev_samples <- (at, covered) :: b.rev_samples

let build ?(total = 0) b = { total; samples = List.rev b.rev_samples }

(* ------------------------------------------------------------------ *)
(* Interchange format                                                   *)
(* ------------------------------------------------------------------ *)

(* Same versioning discipline as the counts format: a foreign "# sic
   coverage timeline vN" header is rejected, not skipped as a comment, so
   a future format bump cannot be misread as an empty timeline. *)
let header = "# sic coverage timeline v1"

let header_prefix = "# sic coverage timeline"

exception Bad_format of string

let bad_format lineno fmt =
  Printf.ksprintf (fun m -> raise (Bad_format (Printf.sprintf "line %d: %s" lineno m))) fmt

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (Printf.sprintf "total %d\n" t.total);
  List.iter (fun (at, c) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" at c)) t.samples;
  Buffer.contents buf

let of_string s =
  let total = ref 0 in
  let rev_samples = ref [] in
  let saw_header = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if
        String.length line >= String.length header_prefix
        && String.sub line 0 (String.length header_prefix) = header_prefix
      then begin
        if line <> header then
          bad_format lineno "unsupported timeline format %S (this reader understands %S)" line
            header;
        saw_header := true
      end
      else if line = "" || line.[0] = '#' then ()
      else if not !saw_header then bad_format lineno "missing %S header" header
      else
        match String.split_on_char ' ' line with
        | [ "total"; n ] -> (
            match int_of_string_opt n with
            | Some v when v >= 0 -> total := v
            | Some _ | None -> bad_format lineno "bad total in %S" line)
        | [ at; covered ] -> (
            match (int_of_string_opt at, int_of_string_opt covered) with
            | Some a, Some c when a >= 0 && c >= 0 -> (
                match !rev_samples with
                | (prev, _) :: _ when prev >= a ->
                    bad_format lineno "sample at %d is not after %d" a prev
                | _ -> rev_samples := (a, c) :: !rev_samples)
            | _ -> bad_format lineno "expected '<at> <covered>', got %S" line)
        | _ -> bad_format lineno "expected '<at> <covered>', got %S" line)
    (String.split_on_char '\n' s);
  if not !saw_header then raise (Bad_format (Printf.sprintf "missing %S header" header));
  { total = !total; samples = List.rev !rev_samples }

let output oc t = output_string oc (to_string t)

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc t)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let spark_levels = " .:-=+*#@"

(** A fixed-width ASCII curve: each column is the coverage level (relative
    to [total], or to the final coverage when [total] is 0) at that
    fraction of the run. Deterministic, so renderings can be diffed. *)
let sparkline ?(width = 32) t =
  let scale = if t.total > 0 then t.total else max 1 (final_covered t) in
  let span = max 1 (last_at t) in
  let buf = Bytes.make width ' ' in
  let covered_by at =
    List.fold_left (fun acc (a, c) -> if a <= at then c else acc) 0 t.samples
  in
  for col = 0 to width - 1 do
    let at = (col + 1) * span / width in
    let c = covered_by at in
    let level = c * (String.length spark_levels - 1) / scale in
    Bytes.set buf col spark_levels.[max 0 (min (String.length spark_levels - 1) level)]
  done;
  Bytes.to_string buf
