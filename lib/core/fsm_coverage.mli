(** Finite state machine coverage (§4.3).

    Finds state registers through the DSL's ChiselEnum-style [Enum_reg]
    annotations, infers the possible next states per current state by
    constant propagation through the lowered next-state logic (Figure 7),
    over-approximating conservatively when the expression is opaque, and
    adds a cover for every state, every inferred transition, and the
    reset entry. *)

open Sic_ir

type transition = { from_state : string; to_state : string }

type fsm = {
  reg_name : string;
  enum : Annotation.enum_def;
  state_covers : (string * string) list;  (** state name -> cover name *)
  transition_covers : (transition * string) list;
  reset_cover : (string * string) option;  (** initial state, cover name *)
  over_approximated : bool;
      (** true when some case fell back to "all states are possible" —
          the formal backend can then prove which transitions are dead
          (§5.5) *)
}

type db = fsm list

(** Next-state analysis result for one current state. *)
type next_states = States of int list | All

val analyze_reg :
  ty_of:(string -> Ty.t) ->
  defs:(string, Expr.t) Hashtbl.t ->
  driver:Expr.t ->
  enum:Annotation.enum_def ->
  reg_name:string ->
  (int * next_states) list * bool
(** Exposed for testing: per-state reachable constants and whether any
    case over-approximated. *)

val instrument : Circuit.t -> Circuit.t * db
(** Requires a flat, lowered circuit. *)

val pass : db ref -> Sic_passes.Pass.t

type fsm_report = {
  states_total : int;
  states_covered : int;
  transitions_total : int;
  transitions_covered : int;
  missing : string list;
}

val report : db -> Counts.t -> fsm_report
val render : db -> Counts.t -> string
