(** HTML report generation — the "interactive HTML reports" the paper
    names as the natural report-generator extension (§4, Table 1
    discussion). One self-contained page per run: summary tiles, a line
    coverage table with per-source-file annotated listings, and sections
    for whichever other metrics were collected. Still entirely
    simulator-independent: the input is the same metadata + counts map. *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|<style>
body { font-family: ui-monospace, monospace; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.tiles { display: flex; gap: 1em; flex-wrap: wrap; }
.tile { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 0.8em 1.2em; }
.tile b { display: block; font-size: 1.4em; }
table { border-collapse: collapse; background: #fff; }
td, th { border: 1px solid #ddd; padding: 0.2em 0.6em; text-align: left; }
tr.hit td { background: #e8f6e8; } tr.miss td { background: #fbe9e9; }
tr.excluded td { background: #f0f0f0; color: #888; text-decoration: line-through; }
.count { text-align: right; color: #555; }
.foot { color: #666; font-size: 0.9em; margin-top: 1.2em; }
pre { background: #fff; border: 1px solid #ddd; padding: 0.6em; }
</style>|}

(* Engine-profiler heat for one source line, as plain data: this module
   cannot depend on the simulator library, so callers (the CLI) convert
   their profile artifacts into this shape. *)
type line_heat = {
  heat_file : string;
  heat_line : int;
  heat_hits : int;  (** value-changing evaluations attributed to the line *)
  heat_time_ns : int;  (** sampled engine self-time; 0 when counts-only *)
}

let pct covered total =
  if total = 0 then 100.0 else 100.0 *. float_of_int covered /. float_of_int total

let tile label covered total =
  Printf.sprintf "<div class=\"tile\"><b>%.1f%%</b>%s (%d/%d)</div>" (pct covered total)
    (esc label) covered total

(* annotated source listing for one file; relative paths resolve against
   [source_root], so reports written from another directory (a coverage
   database, say) still find their sources *)
let source_section buf ~source_root ?(heat : line_heat list = []) file
    (lines : (int * int) list) =
  Buffer.add_string buf (Printf.sprintf "<h2>%s</h2>\n<table>\n" (esc file));
  (* per-line engine heat: normalize against the hottest line of the file
     so the tint reads as "share of this file's simulation cost". The
     profile and the report may name the same source through different
     prefixes (one recorded via a relative path, the other absolute), so
     accept a component-aligned suffix match either way round. *)
  let same_source a b =
    String.equal a b
    ||
    let suffix_of short long =
      let ls = String.length short and ll = String.length long in
      ls < ll
      && String.equal short (String.sub long (ll - ls) ls)
      && long.[ll - ls - 1] = '/'
    in
    suffix_of a b || suffix_of b a
  in
  let heat_of = Hashtbl.create 16 in
  List.iter
    (fun h -> if same_source h.heat_file file then Hashtbl.replace heat_of h.heat_line h)
    heat;
  let heat_max =
    Hashtbl.fold
      (fun _ h acc -> max acc (if h.heat_time_ns > 0 then h.heat_time_ns else h.heat_hits))
      heat_of 0
  in
  let with_heat = heat_max > 0 in
  Buffer.add_string buf
    (if with_heat then
       "<tr><th>line</th><th class=\"count\">count</th><th class=\"count\">heat</th><th>source</th></tr>\n"
     else "<tr><th>line</th><th class=\"count\">count</th><th>source</th></tr>\n");
  let path = if Filename.is_relative file then Filename.concat source_root file else file in
  let source =
    if Sys.file_exists path then begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> Array.of_list (List.rev acc)
          in
          Some (go []))
    end
    else None
  in
  List.iter
    (fun (line, count) ->
      let text =
        match source with
        | Some arr when line - 1 >= 0 && line - 1 < Array.length arr -> arr.(line - 1)
        | Some _ | None -> ""
      in
      if with_heat then begin
        let cell =
          match Hashtbl.find_opt heat_of line with
          | None -> "<td class=\"count\"></td>"
          | Some h ->
              let v = if h.heat_time_ns > 0 then h.heat_time_ns else h.heat_hits in
              let alpha = 0.85 *. float_of_int v /. float_of_int heat_max in
              let label =
                if h.heat_time_ns > 0 then Printf.sprintf "%dns" h.heat_time_ns
                else Printf.sprintf "%d&times;" h.heat_hits
              in
              Printf.sprintf
                "<td class=\"count\" style=\"background:rgba(255,140,0,%.2f)\" title=\"%d value changes\">%s</td>"
                alpha h.heat_hits label
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<tr class=\"%s\"><td>%d</td><td class=\"count\">%d</td>%s<td><code>%s</code></td></tr>\n"
             (if count > 0 then "hit" else "miss")
             line count cell (esc text))
      end
      else
        Buffer.add_string buf
          (Printf.sprintf "<tr class=\"%s\"><td>%d</td><td class=\"count\">%d</td><td><code>%s</code></td></tr>\n"
             (if count > 0 then "hit" else "miss")
             line count (esc text)))
    lines;
  Buffer.add_string buf "</table>\n"

let curve_colors = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

(* coverage-vs-work curves as one self-contained inline SVG: no scripts,
   no external assets, printable — in keeping with the rest of the page *)
let timeline_section buf (timelines : (string * Timeline.t) list) =
  let w = 640. and h = 240. and pad = 36. in
  let max_at =
    float_of_int
      (List.fold_left (fun acc (_, tl) -> max acc (Timeline.last_at tl)) 1 timelines)
  in
  let max_cov =
    float_of_int
      (List.fold_left
         (fun acc (_, (tl : Timeline.t)) ->
           max acc
             (if tl.Timeline.total > 0 then tl.Timeline.total
              else Timeline.final_covered tl))
         1 timelines)
  in
  let x at = pad +. ((w -. (2. *. pad)) *. float_of_int at /. max_at) in
  let y c = h -. pad -. ((h -. (2. *. pad)) *. float_of_int c /. max_cov) in
  Buffer.add_string buf "<h2>coverage convergence</h2>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" style=\"background:#fff;border:1px solid #ddd\">\n"
       w h w h);
  (* axes *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#999\"/>\n<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#999\"/>\n"
       pad (h -. pad) (w -. pad) (h -. pad) pad pad pad (h -. pad));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#555\">0</text>\n\
        <text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#555\" text-anchor=\"end\">%.0f work</text>\n\
        <text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#555\">%.0f pts</text>\n"
       pad
       (h -. pad +. 12.)
       (w -. pad)
       (h -. pad +. 12.)
       max_at (4.) (pad -. 4.) max_cov);
  List.iteri
    (fun i (label, (tl : Timeline.t)) ->
      let color = curve_colors.(i mod Array.length curve_colors) in
      let points =
        String.concat " "
          (Printf.sprintf "%.1f,%.1f" (x 0) (y 0)
          :: List.map
               (fun (at, c) -> Printf.sprintf "%.1f,%.1f" (x at) (y c))
               tl.Timeline.samples)
      in
      Buffer.add_string buf
        (Printf.sprintf "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n"
           points color);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"%s\">%s</text>\n"
           (pad +. 6.)
           (pad +. 12. +. (12. *. float_of_int i))
           color (esc label)))
    timelines;
  Buffer.add_string buf "</svg>\n"

(** Render one self-contained HTML page. Only the metrics whose metadata
    is passed appear. Relative source-file paths in the line-coverage
    listings are resolved against [source_root] (default: the process
    CWD), not wherever the report happens to be generated from.
    [timelines] adds a coverage-convergence chart (label -> curve, e.g.
    one per campaign run). [excluded] names points formally proven
    unreachable: they render greyed out in their own table rather than
    tinting as uncovered, are subtracted from the cover-point summary
    tile's denominator, and get an exclusion footnote. *)
let render ?(title = "SIC coverage report") ?(source_root = Filename.current_dir_name)
    ?(line : Line_coverage.db option)
    ?(toggle : Toggle_coverage.db option) ?(fsm : Fsm_coverage.db option)
    ?(rv : Ready_valid_coverage.db option) ?(timelines : (string * Timeline.t) list = [])
    ?(profile : line_heat list = []) ?(excluded : string list = []) (counts : Counts.t) :
    string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>%s</head><body>\n<h1>%s</h1>\n"
       (esc title) style (esc title));
  let is_excluded n = List.mem n excluded in
  (* summary tiles *)
  Buffer.add_string buf "<div class=\"tiles\">\n";
  (if excluded <> [] then
     let live = List.filter (fun n -> not (is_excluded n)) (Counts.names counts) in
     let cov = List.length (List.filter (fun n -> Counts.get counts n > 0) live) in
     Buffer.add_string buf (tile " cover points" cov (List.length live)));
  (match line with
  | Some db ->
      let r = Line_coverage.report db counts in
      Buffer.add_string buf
        (tile " branches" r.Line_coverage.branches_covered r.Line_coverage.branches_total);
      Buffer.add_string buf
        (tile " lines" r.Line_coverage.lines_covered r.Line_coverage.lines_total)
  | None -> ());
  (match toggle with
  | Some db ->
      let r = Toggle_coverage.report db counts in
      Buffer.add_string buf
        (tile " toggle bits" r.Toggle_coverage.bits_toggled r.Toggle_coverage.bits_total)
  | None -> ());
  (match fsm with
  | Some db ->
      let r = Fsm_coverage.report db counts in
      Buffer.add_string buf
        (tile " fsm states" r.Fsm_coverage.states_covered r.Fsm_coverage.states_total);
      Buffer.add_string buf
        (tile " fsm transitions" r.Fsm_coverage.transitions_covered
           r.Fsm_coverage.transitions_total)
  | None -> ());
  Buffer.add_string buf "</div>\n";
  if timelines <> [] then timeline_section buf timelines;
  (* line coverage: per-file listings *)
  (match line with
  | Some db ->
      let r = Line_coverage.report db counts in
      let files =
        List.sort_uniq String.compare (List.map (fun ((f, _), _) -> f) r.Line_coverage.per_line)
      in
      List.iter
        (fun file ->
          let lines =
            List.filter_map
              (fun ((f, l), c) -> if String.equal f file then Some (l, c) else None)
              r.Line_coverage.per_line
          in
          source_section buf ~source_root ~heat:profile file lines)
        files
  | None -> ());
  (* other metric details reuse the ASCII renderers inside <pre> *)
  (match toggle with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>toggle detail</h2><pre>%s</pre>\n"
           (esc (Toggle_coverage.render db counts)))
  | None -> ());
  (match fsm with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>fsm detail</h2><pre>%s</pre>\n" (esc (Fsm_coverage.render db counts)))
  | None -> ());
  (match rv with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>ready/valid detail</h2><pre>%s</pre>\n"
           (esc (Ready_valid_coverage.render db counts)))
  | None -> ());
  (* with exclusions in play, show the raw cover-point table so excluded
     points are visibly off the books instead of tinting as uncovered *)
  if excluded <> [] then begin
    Buffer.add_string buf "<h2>cover points</h2>\n<table>\n";
    Buffer.add_string buf
      "<tr><th>point</th><th class=\"count\">count</th><th>status</th></tr>\n";
    List.iter
      (fun n ->
        let c = Counts.get counts n in
        let cls, status =
          if is_excluded n then ("excluded", "excluded (proven unreachable)")
          else if c > 0 then ("hit", "covered")
          else ("miss", "uncovered")
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<tr class=\"%s\"><td><code>%s</code></td><td class=\"count\">%d</td><td>%s</td></tr>\n"
             cls (esc n) c status))
      (List.sort_uniq String.compare (Counts.names counts @ excluded));
    Buffer.add_string buf "</table>\n";
    Buffer.add_string buf
      (Printf.sprintf
         "<p class=\"foot\">%d point%s proven unreachable (bounded model check) %s excluded \
          from the coverage totals above.</p>\n"
         (List.length excluded)
         (if List.length excluded = 1 then "" else "s")
         (if List.length excluded = 1 then "is" else "are"))
  end;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let save path ?title ?source_root ?line ?toggle ?fsm ?rv ?timelines ?profile ?excluded
    counts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (render ?title ?source_root ?line ?toggle ?fsm ?rv ?timelines ?profile ?excluded
           counts))
