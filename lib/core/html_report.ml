(** HTML report generation — the "interactive HTML reports" the paper
    names as the natural report-generator extension (§4, Table 1
    discussion). One self-contained page per run: summary tiles, a line
    coverage table with per-source-file annotated listings, and sections
    for whichever other metrics were collected. Still entirely
    simulator-independent: the input is the same metadata + counts map. *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|<style>
body { font-family: ui-monospace, monospace; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.tiles { display: flex; gap: 1em; flex-wrap: wrap; }
.tile { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 0.8em 1.2em; }
.tile b { display: block; font-size: 1.4em; }
table { border-collapse: collapse; background: #fff; }
td, th { border: 1px solid #ddd; padding: 0.2em 0.6em; text-align: left; }
tr.hit td { background: #e8f6e8; } tr.miss td { background: #fbe9e9; }
.count { text-align: right; color: #555; }
pre { background: #fff; border: 1px solid #ddd; padding: 0.6em; }
</style>|}

let pct covered total =
  if total = 0 then 100.0 else 100.0 *. float_of_int covered /. float_of_int total

let tile label covered total =
  Printf.sprintf "<div class=\"tile\"><b>%.1f%%</b>%s (%d/%d)</div>" (pct covered total)
    (esc label) covered total

(* annotated source listing for one file; relative paths resolve against
   [source_root], so reports written from another directory (a coverage
   database, say) still find their sources *)
let source_section buf ~source_root file (lines : (int * int) list) =
  Buffer.add_string buf (Printf.sprintf "<h2>%s</h2>\n<table>\n" (esc file));
  Buffer.add_string buf "<tr><th>line</th><th class=\"count\">count</th><th>source</th></tr>\n";
  let path = if Filename.is_relative file then Filename.concat source_root file else file in
  let source =
    if Sys.file_exists path then begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> Array.of_list (List.rev acc)
          in
          Some (go []))
    end
    else None
  in
  List.iter
    (fun (line, count) ->
      let text =
        match source with
        | Some arr when line - 1 >= 0 && line - 1 < Array.length arr -> arr.(line - 1)
        | Some _ | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "<tr class=\"%s\"><td>%d</td><td class=\"count\">%d</td><td><code>%s</code></td></tr>\n"
           (if count > 0 then "hit" else "miss")
           line count (esc text)))
    lines;
  Buffer.add_string buf "</table>\n"

(** Render one self-contained HTML page. Only the metrics whose metadata
    is passed appear. Relative source-file paths in the line-coverage
    listings are resolved against [source_root] (default: the process
    CWD), not wherever the report happens to be generated from. *)
let render ?(title = "SIC coverage report") ?(source_root = Filename.current_dir_name)
    ?(line : Line_coverage.db option)
    ?(toggle : Toggle_coverage.db option) ?(fsm : Fsm_coverage.db option)
    ?(rv : Ready_valid_coverage.db option) (counts : Counts.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>%s</head><body>\n<h1>%s</h1>\n"
       (esc title) style (esc title));
  (* summary tiles *)
  Buffer.add_string buf "<div class=\"tiles\">\n";
  (match line with
  | Some db ->
      let r = Line_coverage.report db counts in
      Buffer.add_string buf
        (tile " branches" r.Line_coverage.branches_covered r.Line_coverage.branches_total);
      Buffer.add_string buf
        (tile " lines" r.Line_coverage.lines_covered r.Line_coverage.lines_total)
  | None -> ());
  (match toggle with
  | Some db ->
      let r = Toggle_coverage.report db counts in
      Buffer.add_string buf
        (tile " toggle bits" r.Toggle_coverage.bits_toggled r.Toggle_coverage.bits_total)
  | None -> ());
  (match fsm with
  | Some db ->
      let r = Fsm_coverage.report db counts in
      Buffer.add_string buf
        (tile " fsm states" r.Fsm_coverage.states_covered r.Fsm_coverage.states_total);
      Buffer.add_string buf
        (tile " fsm transitions" r.Fsm_coverage.transitions_covered
           r.Fsm_coverage.transitions_total)
  | None -> ());
  Buffer.add_string buf "</div>\n";
  (* line coverage: per-file listings *)
  (match line with
  | Some db ->
      let r = Line_coverage.report db counts in
      let files =
        List.sort_uniq String.compare (List.map (fun ((f, _), _) -> f) r.Line_coverage.per_line)
      in
      List.iter
        (fun file ->
          let lines =
            List.filter_map
              (fun ((f, l), c) -> if String.equal f file then Some (l, c) else None)
              r.Line_coverage.per_line
          in
          source_section buf ~source_root file lines)
        files
  | None -> ());
  (* other metric details reuse the ASCII renderers inside <pre> *)
  (match toggle with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>toggle detail</h2><pre>%s</pre>\n"
           (esc (Toggle_coverage.render db counts)))
  | None -> ());
  (match fsm with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>fsm detail</h2><pre>%s</pre>\n" (esc (Fsm_coverage.render db counts)))
  | None -> ());
  (match rv with
  | Some db ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>ready/valid detail</h2><pre>%s</pre>\n"
           (esc (Ready_valid_coverage.render db counts)))
  | None -> ());
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let save path ?title ?source_root ?line ?toggle ?fsm ?rv counts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?title ?source_root ?line ?toggle ?fsm ?rv counts))
