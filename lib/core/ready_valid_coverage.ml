(** Ready/valid coverage (§4.4): one cover per DecoupledIO-style bundle,
    counting cycles in which a transfer fires ([ready && valid]). Bundles
    are found through the [Decoupled] annotations the DSL records, plus a
    structural scan for [<x>_ready] / [<x>_valid] port pairs so that
    hand-written (parsed) circuits are covered too. This was the metric the
    paper added in ~3 hours to show extensibility; it falls out just as
    naturally here. *)

open Sic_ir
module Pass = Sic_passes.Pass

let pass_name = "ready-valid-coverage"

type point = { cover_name : string; prefix : string; from_annotation : bool }

type db = point list

let instrument (c : Circuit.t) : Circuit.t * db =
  if not (Sic_passes.Compile.is_low_form c) then
    Pass.error ~pass:pass_name "ready/valid coverage requires a flat, lowered circuit";
  let m = Circuit.main c in
  let env = Circuit.build_env m in
  let has name ty = Hashtbl.find_opt env name = Some ty in
  let annotated =
    Annotation.decoupled_of ~module_name:m.Circuit.module_name c.Circuit.annotations
    |> List.map fst
  in
  (* structural scan: any name pair <p>_ready / <p>_valid, both UInt<1> *)
  let structural =
    Hashtbl.fold
      (fun name ty acc ->
        match ty with
        | Ty.UInt 1 when Filename.check_suffix name "_ready" ->
            let p = Filename.chop_suffix name "_ready" in
            if has (p ^ "_valid") (Ty.UInt 1) then p :: acc else acc
        | _ -> acc)
      env []
  in
  let prefixes =
    List.sort_uniq String.compare (annotated @ structural)
    |> List.filter (fun p -> has (p ^ "_ready") (Ty.UInt 1) && has (p ^ "_valid") (Ty.UInt 1))
  in
  let ns = Namespace.of_module m in
  let db = ref [] in
  let stmts =
    List.map
      (fun prefix ->
        let cover_name = Namespace.fresh ns (Printf.sprintf "rv_%s" prefix) in
        db :=
          { cover_name; prefix; from_annotation = List.mem prefix annotated } :: !db;
        Stmt.Cover
          {
            name = cover_name;
            pred =
              Expr.Binop (Expr.And, Expr.Ref (prefix ^ "_ready"), Expr.Ref (prefix ^ "_valid"));
            info = Info.unknown;
          })
      prefixes
  in
  let m' = { m with Circuit.body = m.Circuit.body @ stmts } in
  ({ c with Circuit.modules = [ m' ] }, List.rev !db)

let pass (db_out : db ref) =
  Pass.make pass_name (fun c ->
      let c, db = instrument c in
      db_out := db;
      c)

let render (db : db) (counts : Counts.t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== ready/valid coverage ===\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %d transfers%s\n" p.prefix (Counts.get counts p.cover_name)
           (if Counts.get counts p.cover_name = 0 then "  <- never fired" else "")))
    db;
  Buffer.contents buf
