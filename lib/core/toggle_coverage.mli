(** Toggle coverage (§4.2): previous-value register + xor + first-cycle
    disable, one cover per bit, instrumenting one representative per
    global alias group. Runs on the optimized low-form circuit. *)

open Sic_ir

type category = Io | Register | Wire | Mem_port
type edge = Any | Rising | Falling

type sel = { sig_name : string; category : category; width : int }

type point = {
  cover_name : string;
  signal : string;  (** representative actually instrumented *)
  bit : int;
  edge : edge;
  aliases : string list;  (** signals covered through this representative *)
}

type db = {
  points : point list;
  selected : sel list;
  alias_groups : Sic_passes.Alias.groups;
}

val default_categories : category list
val category_name : category -> string

val select : category list -> Circuit.modul -> sel list
(** The signals the pass would instrument, before alias dedup. *)

val instrument :
  ?categories:category list -> ?edges:bool -> ?use_alias:bool -> Circuit.t -> Circuit.t * db
(** With [~edges:true], rising and falling transitions get separate
    covers (two per bit) — the extension mentioned in §4.2. With
    [~use_alias:false], alias deduplication is disabled (ablation). *)

val pass : ?categories:category list -> ?edges:bool -> db ref -> Sic_passes.Pass.t

type toggle_report = {
  bits_total : int;
  bits_toggled : int;
  stuck : (string * int) list;  (** never-toggled (signal, bit) *)
  per_signal : (string * int * int) list;  (** signal, toggled, width *)
}

val report : db -> Counts.t -> toggle_report
val render : db -> Counts.t -> string
