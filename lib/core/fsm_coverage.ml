(** Finite state machine coverage (§4.3).

    Uses the [Enum_reg] annotations produced by the DSL's ChiselEnum
    analogue to find state registers. For each possible current state the
    next-state expression is simplified by constant propagation (the
    current-state symbol replaced by its constant), and the set of
    reachable constants is collected from the resulting mux tree. When the
    simplified expression is neither a constant nor a mux the analysis
    over-approximates with *all* states — conservative, as in the paper:
    transitions may be over-reported but are never missed (§5.5 shows the
    formal backend finding exactly such over-approximations).

    A cover statement is then added for every state and every inferred
    transition, plus one for the reset entry. *)

open Sic_ir
module Pass = Sic_passes.Pass
module Bv = Sic_bv.Bv

let pass_name = "fsm-coverage"

type transition = { from_state : string; to_state : string }

type fsm = {
  reg_name : string;
  enum : Annotation.enum_def;
  state_covers : (string * string) list;  (** state -> cover name *)
  transition_covers : (transition * string) list;
  reset_cover : (string * string) option;  (** initial state, cover name *)
  over_approximated : bool;  (** true when some case fell back to "all" *)
}

type db = fsm list

(* ------------------------------------------------------------------ *)
(* Next-state analysis                                                  *)
(* ------------------------------------------------------------------ *)

type next_states = States of int list | All

let union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | States x, States y -> States (List.sort_uniq compare (x @ y))

(* Collect the constants reachable from the mux/constant spine of an
   expression. References to nodes and wires are resolved lazily through
   [defs], but only when they sit on the spine — anything below another
   primop would be [All] regardless, so the analysis never blows up on
   large datapath cones. Each resolution step re-substitutes the current
   state and re-simplifies, which folds [eq(state, k)] selectors to
   constants and prunes dead branches, exactly the procedure of Figure 7. *)
let collect ~ty_of ~defs ~subst_state (e : Expr.t) : next_states =
  (* Mux selectors are usually node references ([_WHEN] conditions); try to
     fold them to a constant by iteratively inlining definitions and
     re-simplifying under the current-state substitution. Selector cones
     (path predicates, [eq(state, k)] tests) are small, so a bounded number
     of rounds suffices; anything unresolved stays symbolic and the caller
     unions both arms. *)
  let rec size (e : Expr.t) =
    match e with
    | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> 1
    | Expr.Mux (a, b, c) -> 1 + size a + size b + size c
    | Expr.Unop (_, a) | Expr.Intop (_, _, a) | Expr.Bits (a, _, _) -> 1 + size a
    | Expr.Binop (_, a, b) -> 1 + size a + size b
  in
  let resolve_cond c =
    let rec rounds n c =
      let c' =
        Sic_passes.Const_prop.simplify ty_of
          (subst_state (Expr.subst (fun r -> Hashtbl.find_opt defs r) c))
      in
      match c' with
      | Expr.UIntLit v -> Some (Bv.to_bool v)
      | _ ->
          if n = 0 || size c' > 4096 || Expr.equal c c' then None else rounds (n - 1) c'
    in
    match Sic_passes.Const_prop.simplify ty_of (subst_state c) with
    | Expr.UIntLit v -> Some (Bv.to_bool v)
    | c -> rounds 16 c
  in
  let rec go depth e =
    if depth = 0 then All
    else
      let e = Sic_passes.Const_prop.simplify ty_of (subst_state e) in
      match e with
      | Expr.UIntLit v -> (
          match Bv.to_int v with Some n -> States [ n ] | None -> All)
      | Expr.Mux (c, a, b) -> (
          match resolve_cond c with
          | Some true -> go (depth - 1) a
          | Some false -> go (depth - 1) b
          | None -> union (go (depth - 1) a) (go (depth - 1) b))
      | Expr.Ref n -> (
          match Hashtbl.find_opt defs n with
          | Some d -> go (depth - 1) d
          | None -> All)
      | Expr.SIntLit _ | Expr.Unop _ | Expr.Binop _ | Expr.Intop _ | Expr.Bits _ -> All
  in
  go 4096 e

let analyze_reg ~ty_of ~defs ~driver ~(enum : Annotation.enum_def) ~reg_name :
    (int * next_states) list * bool =
  let w = Ty.width (ty_of reg_name) in
  let results =
    List.map
      (fun (_, code) ->
        let subst_state e =
          Expr.subst
            (fun n ->
              if String.equal n reg_name then Some (Expr.u_lit ~width:w code) else None)
            e
        in
        (code, collect ~ty_of ~defs ~subst_state driver))
      enum.Annotation.variants
  in
  let over = List.exists (fun (_, ns) -> ns = All) results in
  (results, over)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                      *)
(* ------------------------------------------------------------------ *)

let variant_name (enum : Annotation.enum_def) code =
  match List.find_opt (fun (_, c) -> c = code) enum.Annotation.variants with
  | Some (n, _) -> Some n
  | None -> None

let instrument (c : Circuit.t) : Circuit.t * db =
  if not (Sic_passes.Compile.is_low_form c) then
    Pass.error ~pass:pass_name "fsm coverage requires a flat, lowered circuit";
  let m = Circuit.main c in
  let annos = c.Circuit.annotations in
  let enum_regs = Annotation.enum_regs_of ~module_name:m.Circuit.module_name annos in
  let env = Circuit.build_env m in
  let ty_of = Circuit.lookup_of env in
  let ns = Namespace.of_module m in
  (* definition maps for expansion and the driver of each register *)
  let defs = Hashtbl.create 64 in
  let drivers = Hashtbl.create 16 in
  let reg_resets = Hashtbl.create 16 in
  let regs = Hashtbl.create 16 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Reg { name; reset; _ } ->
          Hashtbl.replace regs name ();
          Hashtbl.replace reg_resets name reset
      | _ -> ())
    m.Circuit.body;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { name; expr; _ } -> Hashtbl.replace defs name expr
      | Stmt.Connect { loc; expr; _ } ->
          if Hashtbl.mem regs loc then Hashtbl.replace drivers loc expr
          else Hashtbl.replace defs loc expr
      | _ -> ())
    m.Circuit.body;
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  let fsms =
    List.filter_map
      (fun (reg_name, enum_name) ->
        match (Annotation.find_enum annos enum_name, Hashtbl.mem regs reg_name) with
        | None, _ | _, false -> None (* register optimized away: drop *)
        | Some enum, true ->
            let w = Ty.width (ty_of reg_name) in
            let driver =
              Option.value ~default:(Expr.Ref reg_name) (Hashtbl.find_opt drivers reg_name)
            in
            let cases, over = analyze_reg ~ty_of ~defs ~driver ~enum ~reg_name in
            let next_name = Namespace.fresh ns (Printf.sprintf "_fsm_next_%s" reg_name) in
            emit (Stmt.Node { name = next_name; expr = driver; info = Info.unknown });
            let not_reset = Expr.Unop (Expr.Not, Expr.Ref "reset") in
            (* state covers *)
            let state_covers =
              List.map
                (fun (vname, code) ->
                  let cover_name =
                    Namespace.fresh ns (Printf.sprintf "fsm_%s_state_%s" reg_name vname)
                  in
                  emit
                    (Stmt.Cover
                       {
                         name = cover_name;
                         pred = Expr.eq_ (Expr.Ref reg_name) (Expr.u_lit ~width:w code);
                         info = Info.unknown;
                       });
                  (vname, cover_name))
                enum.Annotation.variants
            in
            (* transition covers *)
            let transition_covers =
              List.concat_map
                (fun (code, nexts) ->
                  let targets =
                    match nexts with
                    | States l -> List.filter_map (variant_name enum) l
                    | All -> List.map fst enum.Annotation.variants
                  in
                  let from_state =
                    Option.value ~default:(string_of_int code) (variant_name enum code)
                  in
                  List.map
                    (fun to_state ->
                      let to_code = List.assoc to_state enum.Annotation.variants in
                      let cover_name =
                        Namespace.fresh ns
                          (Printf.sprintf "fsm_%s_%s_to_%s" reg_name from_state to_state)
                      in
                      emit
                        (Stmt.Cover
                           {
                             name = cover_name;
                             pred =
                               Expr.and_ not_reset
                                 (Expr.and_
                                    (Expr.eq_ (Expr.Ref reg_name) (Expr.u_lit ~width:w code))
                                    (Expr.eq_ (Expr.Ref next_name)
                                       (Expr.u_lit ~width:w to_code)));
                             info = Info.unknown;
                           });
                      ({ from_state; to_state }, cover_name))
                    targets)
                cases
            in
            (* reset entry *)
            let reset_cover =
              match Hashtbl.find_opt reg_resets reg_name with
              | Some (Some (rst, init)) -> (
                  match Sic_passes.Const_prop.simplify ty_of init with
                  | Expr.UIntLit v when Bv.to_int v <> None ->
                      let code = Option.get (Bv.to_int v) in
                      let init_state =
                        Option.value ~default:(string_of_int code) (variant_name enum code)
                      in
                      let cover_name =
                        Namespace.fresh ns (Printf.sprintf "fsm_%s_reset_to_%s" reg_name init_state)
                      in
                      emit (Stmt.Cover { name = cover_name; pred = rst; info = Info.unknown });
                      Some (init_state, cover_name)
                  | _ -> None)
              | Some None | None -> None
            in
            Some
              {
                reg_name;
                enum;
                state_covers;
                transition_covers;
                reset_cover;
                over_approximated = over;
              })
      enum_regs
  in
  let m' = { m with Circuit.body = m.Circuit.body @ List.rev !stmts } in
  ({ c with Circuit.modules = [ m' ] }, fsms)

let pass (db_out : db ref) =
  Pass.make pass_name (fun c ->
      let c, db = instrument c in
      db_out := db;
      c)

(** {1 Report generation} *)

type fsm_report = {
  states_total : int;
  states_covered : int;
  transitions_total : int;
  transitions_covered : int;
  missing : string list;  (** uncovered state/transition cover names *)
}

let report (db : db) (counts : Counts.t) : fsm_report =
  let covered name = Counts.get counts name > 0 in
  let all_states = List.concat_map (fun f -> List.map snd f.state_covers) db in
  let all_transitions = List.concat_map (fun f -> List.map snd f.transition_covers) db in
  {
    states_total = List.length all_states;
    states_covered = List.length (List.filter covered all_states);
    transitions_total = List.length all_transitions;
    transitions_covered = List.length (List.filter covered all_transitions);
    missing =
      List.filter (fun n -> not (covered n)) (all_states @ all_transitions)
      |> List.sort String.compare;
  }

let render (db : db) (counts : Counts.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "=== fsm coverage ===\n";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "fsm %s (enum %s)%s\n" f.reg_name f.enum.Annotation.enum_name
           (if f.over_approximated then " [over-approximated]" else ""));
      List.iter
        (fun (state, cover) ->
          Buffer.add_string buf
            (Printf.sprintf "  state %-12s %d\n" state (Counts.get counts cover)))
        f.state_covers;
      List.iter
        (fun (t, cover) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-12s -> %-12s %d\n" t.from_state t.to_state
               (Counts.get counts cover)))
        f.transition_covers;
      match f.reset_cover with
      | Some (init, cover) ->
          Buffer.add_string buf
            (Printf.sprintf "  reset        -> %-12s %d\n" init (Counts.get counts cover))
      | None -> ())
    db;
  let r = report db counts in
  Buffer.add_string buf
    (Printf.sprintf "states: %d/%d  transitions: %d/%d\n" r.states_covered r.states_total
       r.transitions_covered r.transitions_total);
  Buffer.contents buf
