(** The simulator-independent coverage interface (§3): a map from cover
    statement name (including instance path) to a saturating count, one
    common on-disk format, and the trivial pointwise merge of §5.3. *)

type t = (string, int) Hashtbl.t

val create : unit -> t
val get : t -> string -> int
(** 0 for unknown names. *)

val set : t -> string -> int -> unit
val add : t -> string -> int -> unit
(** Saturating accumulate. *)

val incr : t -> string -> unit
val sat_add : int -> int -> int
(** Saturating integer addition (the counter semantics of §3). *)

val names : t -> string list
(** Sorted. *)

val to_sorted_list : t -> (string * int) list
val of_list : (string * int) list -> t
val total_points : t -> int
val covered_points : ?threshold:int -> t -> int
val covered : ?threshold:int -> t -> string list
(** Names covered at least [threshold] times (default 1) — the removal
    set of §5.3. *)

val merge : t list -> t
(** Pointwise saturating sum; missing keys count as zero, so partial
    instrumentations merge cleanly. *)

val equal : t -> t -> bool

(** {1 Run-to-run comparison} *)

type diff = {
  newly_covered : string list;
  lost : string list;
  only_before : string list;
  only_after : string list;
}

val diff : before:t -> after:t -> diff
val render_diff : diff -> string

(** {1 Interchange format}

    One line per point: [<count> <name>]; [#] starts a comment. *)

exception Bad_format of string

val output : out_channel -> t -> unit
val save : string -> t -> unit
val to_string : t -> string
val of_string : string -> t
val load : string -> t
