(** The simulator-independent coverage interface (§3): a map from cover
    statement name (including instance path) to a saturating count, one
    common on-disk format, and the trivial pointwise merge of §5.3. *)

type t = (string, int) Hashtbl.t

val create : unit -> t
val get : t -> string -> int
(** 0 for unknown names. *)

val set : t -> string -> int -> unit
val add : t -> string -> int -> unit
(** Saturating accumulate. *)

val incr : t -> string -> unit
val sat_add : int -> int -> int
(** Saturating integer addition (the counter semantics of §3). *)

val names : t -> string list
(** Sorted. *)

val to_sorted_list : t -> (string * int) list
val of_list : (string * int) list -> t
val total_points : t -> int
val covered_points : ?threshold:int -> t -> int
val covered : ?threshold:int -> t -> string list
(** Names covered at least [threshold] times (default 1) — the removal
    set of §5.3. *)

val merge : t list -> t
(** Pointwise saturating sum; missing keys count as zero, so partial
    instrumentations merge cleanly. Commutative and associative (so
    parallel, out-of-order merging is sound) but {e not} idempotent:
    merging the same run twice double-counts. *)

val union_max : t list -> t
(** Pointwise maximum. Commutative, associative {e and} idempotent — safe
    under at-least-once delivery (e.g. a retried worker reporting the same
    run twice). Like {!merge}, missing keys count as zero and zero-count
    points are preserved. *)

val equal : t -> t -> bool

(** {1 Run-to-run comparison} *)

type diff = {
  newly_covered : string list;
  lost : string list;
  only_before : string list;
  only_after : string list;
}

val diff : before:t -> after:t -> diff
val render_diff : diff -> string

(** {1 Interchange format}

    One line per point: [<count> <name>]; [#] starts a comment. The first
    line written is always the versioned header
    [# sic coverage counts v1]; a reader encountering any other
    [# sic coverage counts vN] line raises {!Bad_format} instead of
    skipping it as a comment, so files from an incompatible future format
    fail loudly. *)

exception Bad_format of string
(** The message names the offending line number, e.g.
    ["line 3: bad count in \"x y\""]. *)

val output : out_channel -> t -> unit
val save : string -> t -> unit
val to_string : t -> string
val of_string : string -> t
val load : string -> t
