(** Branch and line coverage (§4.1).

    Instrumentation runs on the high-form IR, *before* when-lowering: a
    [cover] with predicate 1 is prepended to every branch arm, and the
    lowering pass then conjoins the arm's path predicate — exactly the
    "dominating branch condition becomes an enable signal" observation the
    paper builds on. One extra cover in the module root counts cycles for
    the statements outside any branch.

    The metadata maps each cover to the source lines dominated by its arm;
    the report generator joins it with the counts map from any backend. *)

open Sic_ir
module Pass = Sic_passes.Pass

let pass_name = "line-coverage"

type arm = Then | Else | Root

type branch = {
  cover_name : string;  (** name as emitted (module-unique) *)
  module_name : string;
  arm : arm;
  branch_info : Info.t;  (** locator of the [when] itself *)
  lines : (string * int) list;  (** (file, line) of statements in the arm *)
}

type db = branch list

(* source lines of the statements directly inside an arm (not nested arms —
   those belong to the inner branch's cover, giving exact line counts) *)
let direct_lines stmts =
  List.filter_map
    (fun s ->
      match Stmt.info s with
      | Info.Pos { file; line; _ } -> Some (file, line)
      | Info.Unknown -> None)
    stmts
  |> List.sort_uniq compare

let instrument_module (db : branch list ref) (m : Circuit.modul) : Circuit.modul =
  let ns = Namespace.of_module m in
  let record cover_name arm branch_info lines =
    db := { cover_name; module_name = m.Circuit.module_name; arm; branch_info; lines } :: !db
  in
  let fresh () = Namespace.fresh ns (Printf.sprintf "l_%s" m.Circuit.module_name) in
  let rec instr stmts =
    List.map
      (fun (s : Stmt.t) ->
        match s with
        | Stmt.When { cond; then_; else_; info } ->
            let tname = fresh () in
            record tname Then info (direct_lines then_);
            let then_ =
              Stmt.Cover { name = tname; pred = Expr.true_; info } :: instr then_
            in
            let else_ =
              (* an empty else arm gets no cover: there is no code to cover
                 and Verilog line coverage behaves the same way *)
              if else_ = [] then []
              else begin
                let ename = fresh () in
                record ename Else info (direct_lines else_);
                Stmt.Cover { name = ename; pred = Expr.true_; info } :: instr else_
              end
            in
            Stmt.When { cond; then_; else_; info }
        | Stmt.Node _ | Stmt.Wire _ | Stmt.Reg _ | Stmt.Mem _ | Stmt.Inst _
        | Stmt.Connect _ | Stmt.Cover _ | Stmt.CoverValues _ | Stmt.Stop _
        | Stmt.Print _ -> s)
      stmts
  in
  let body = instr m.Circuit.body in
  let rname = fresh () in
  record rname Root Info.unknown (direct_lines m.Circuit.body);
  { m with Circuit.body = Stmt.Cover { name = rname; pred = Expr.true_; info = Info.unknown } :: body }

(** Instrument every module; returns the circuit and the metadata db. *)
let instrument (c : Circuit.t) : Circuit.t * db =
  let db = ref [] in
  let modules = List.map (instrument_module db) c.Circuit.modules in
  ({ c with Circuit.modules }, List.rev !db)

(** Pass-shaped wrapper storing the metadata in [db_out]. *)
let pass (db_out : db ref) =
  Pass.make pass_name (fun c ->
      let c, db = instrument c in
      db_out := db;
      c)

(** {1 Report generation} *)

(* Counts arrive keyed by full hierarchical names ("core.alu.l_Alu_0"); the
   metadata is keyed by module-unique local names ("l_Alu_0"). Local names
   embed the module name, so matching on the last path segment is
   unambiguous; counts from multiple instances of a module are summed. *)
let local_name full =
  match String.rindex_opt full '.' with
  | None -> full
  | Some i -> String.sub full (i + 1) (String.length full - i - 1)

type line_report = {
  per_line : ((string * int) * int) list;  (** (file, line) -> summed count *)
  lines_total : int;
  lines_covered : int;
  branches_total : int;
  branches_covered : int;
  never_covered : branch list;
}

let report (db : db) (counts : Counts.t) : line_report =
  (* sum counts per local cover name *)
  let by_local = Hashtbl.create 64 in
  Hashtbl.iter
    (fun full v ->
      let l = local_name full in
      Hashtbl.replace by_local l (Counts.sat_add v (Option.value ~default:0 (Hashtbl.find_opt by_local l))))
    counts;
  let count_of b = Option.value ~default:0 (Hashtbl.find_opt by_local b.cover_name) in
  (* only count branches that were actually simulated (present in counts) *)
  let present =
    List.filter (fun b -> Hashtbl.mem by_local b.cover_name) db
  in
  let line_counts = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let c = count_of b in
      List.iter
        (fun fl ->
          Hashtbl.replace line_counts fl
            (Counts.sat_add c (Option.value ~default:0 (Hashtbl.find_opt line_counts fl))))
        b.lines)
    present;
  let per_line =
    Hashtbl.fold (fun fl c acc -> (fl, c) :: acc) line_counts []
    |> List.sort (fun ((f1, l1), _) ((f2, l2), _) -> compare (f1, l1) (f2, l2))
  in
  let lines_covered = List.length (List.filter (fun (_, c) -> c > 0) per_line) in
  let branches_covered = List.length (List.filter (fun b -> count_of b > 0) present) in
  {
    per_line;
    lines_total = List.length per_line;
    lines_covered;
    branches_total = List.length present;
    branches_covered;
    never_covered = List.filter (fun b -> count_of b = 0) present;
  }

let arm_name = function Then -> "when" | Else -> "else" | Root -> "root"

(** Per-module rollup: for each module *type*, branches covered / total
    (instances summed), plus per-instance rows — the "per-instance
    coverage" view (instances are distinguished by their hierarchical
    cover names). *)
type module_summary = {
  summary_module : string;
  instances : (string * int * int) list;  (** path prefix, covered, total *)
  module_covered : int;
  module_total : int;
}

let module_summaries (db : db) (counts : Counts.t) : module_summary list =
  (* instance path of a full name = everything before the local segment *)
  let instance_of full =
    match String.rindex_opt full '.' with
    | None -> "(top)"
    | Some i -> String.sub full 0 i
  in
  let by_local = Hashtbl.create 64 in
  Hashtbl.iter
    (fun full v ->
      let l = local_name full in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_local l) in
      Hashtbl.replace by_local l ((instance_of full, v) :: cur))
    counts;
  let modules = List.sort_uniq String.compare (List.map (fun b -> b.module_name) db) in
  List.filter_map
    (fun md ->
      let branches = List.filter (fun b -> String.equal b.module_name md) db in
      (* collect (instance, covered?, present?) per branch occurrence *)
      let insts = Hashtbl.create 8 in
      List.iter
        (fun b ->
          List.iter
            (fun (inst, v) ->
              let c, t = Option.value ~default:(0, 0) (Hashtbl.find_opt insts inst) in
              Hashtbl.replace insts inst ((if v > 0 then c + 1 else c), t + 1))
            (Option.value ~default:[] (Hashtbl.find_opt by_local b.cover_name)))
        branches;
      if Hashtbl.length insts = 0 then None
      else begin
        let instances =
          Hashtbl.fold (fun i (c, t) acc -> (i, c, t) :: acc) insts []
          |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
        in
        let module_covered = List.fold_left (fun a (_, c, _) -> a + c) 0 instances in
        let module_total = List.fold_left (fun a (_, _, t) -> a + t) 0 instances in
        Some { summary_module = md; instances; module_covered; module_total }
      end)
    modules

let render_module_summary (db : db) (counts : Counts.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "=== per-module line coverage ===\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %4d/%-4d (%.0f%%)\n" s.summary_module s.module_covered
           s.module_total
           (if s.module_total = 0 then 100.0
            else 100.0 *. float_of_int s.module_covered /. float_of_int s.module_total));
      if List.length s.instances > 1 then
        List.iter
          (fun (inst, c, t) ->
            Buffer.add_string buf (Printf.sprintf "    %-20s %4d/%-4d\n" inst c t))
          s.instances)
    (module_summaries db counts);
  Buffer.contents buf

(** ASCII report: summary plus per-source-file annotated lines, in the
    spirit of the paper's "bare-bones ASCII reports". *)
let render ?(with_sources = false) (db : db) (counts : Counts.t) : string =
  let r = report db counts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "=== line coverage ===\n";
  Buffer.add_string buf
    (Printf.sprintf "branches: %d/%d covered (%.1f%%)\n" r.branches_covered
       r.branches_total
       (if r.branches_total = 0 then 100.0
        else 100.0 *. float_of_int r.branches_covered /. float_of_int r.branches_total));
  Buffer.add_string buf
    (Printf.sprintf "lines:    %d/%d covered (%.1f%%)\n" r.lines_covered r.lines_total
       (if r.lines_total = 0 then 100.0
        else 100.0 *. float_of_int r.lines_covered /. float_of_int r.lines_total));
  if r.never_covered <> [] then begin
    Buffer.add_string buf "never covered:\n";
    List.iter
      (fun b ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s in %s %s\n" (arm_name b.arm) b.cover_name b.module_name
             (Info.to_string b.branch_info)))
      r.never_covered
  end;
  (* group per file *)
  let files =
    List.sort_uniq String.compare (List.map (fun ((f, _), _) -> f) r.per_line)
  in
  List.iter
    (fun file ->
      Buffer.add_string buf (Printf.sprintf "--- %s ---\n" file);
      let source_lines =
        if with_sources && Sys.file_exists file then begin
          let ic = open_in file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let rec go acc =
                match input_line ic with
                | l -> go (l :: acc)
                | exception End_of_file -> Array.of_list (List.rev acc)
              in
              Some (go []))
        end
        else None
      in
      List.iter
        (fun ((f, line), c) ->
          if String.equal f file then
            let text =
              match source_lines with
              | Some arr when line - 1 >= 0 && line - 1 < Array.length arr ->
                  " | " ^ arr.(line - 1)
              | Some _ | None -> ""
            in
            Buffer.add_string buf (Printf.sprintf "%8d line %-5d%s\n" c line text))
        r.per_line)
    files;
  Buffer.contents buf
