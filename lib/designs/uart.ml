(** A UART transmitter and receiver with enum-typed FSMs — a peripheral
    with rich state/transition structure for the FSM-coverage metric. *)

open Sic_ir

(** 8N1 UART. [div] sets the bit period in clock cycles. *)
let circuit ?(div = 4) () : Circuit.t =
  let cb = Dsl.create_circuit "Uart" in
  let tx_s = Dsl.enum cb "TxState" [ "Idle"; "Start"; "Data"; "Stop" ] in
  let rx_s = Dsl.enum cb "RxState" [ "Idle"; "Start"; "Data"; "Stop" ] in
  let divw = Ty.clog2 (max 2 div) in
  Dsl.module_ cb "UartTx" (fun m ->
      let open Dsl in
      let in_ = decoupled_input ~loc:__POS__ m "io_in" (Ty.UInt 8) in
      let txd = output ~loc:__POS__ m "txd" (Ty.UInt 1) in
      let state = reg_enum ~loc:__POS__ m "state" tx_s "Idle" in
      let data = reg_ ~loc:__POS__ m "data" (Ty.UInt 8) in
      let bit_count = reg_init ~loc:__POS__ m "bit_count" (lit 3 0) in
      let baud = reg_init ~loc:__POS__ m "baud" (lit divw 0) in
      let at_period = node m "at_period" (baud ==: lit divw (div - 1)) in
      connect m baud (mux_s at_period (lit divw 0) (baud +: lit divw 1));
      connect m txd true_;
      connect m in_.ready (is tx_s "Idle" state);
      switch ~loc:__POS__ m state
        [
          ( enum_value tx_s "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire in_) (fun () ->
                  connect m data in_.bits;
                  connect m baud (lit divw 0);
                  connect m state (enum_value tx_s "Start")) );
          ( enum_value tx_s "Start",
            fun () ->
              connect m txd false_;
              when_ ~loc:__POS__ m at_period (fun () ->
                  connect m bit_count (lit 3 0);
                  connect m state (enum_value tx_s "Data")) );
          ( enum_value tx_s "Data",
            fun () ->
              connect m txd (dshr_s data (resize bit_count 3));
              when_ ~loc:__POS__ m at_period (fun () ->
                  when_else ~loc:__POS__ m
                    (bit_count ==: lit 3 7)
                    (fun () -> connect m state (enum_value tx_s "Stop"))
                    (fun () -> connect m bit_count (bit_count +: lit 3 1))) );
          ( enum_value tx_s "Stop",
            fun () ->
              connect m txd true_;
              when_ ~loc:__POS__ m at_period (fun () ->
                  connect m state (enum_value tx_s "Idle")) );
        ]);
  Dsl.module_ cb "UartRx" (fun m ->
      let open Dsl in
      let rxd = input ~loc:__POS__ m "rxd" (Ty.UInt 1) in
      let out = decoupled_output ~loc:__POS__ m "io_out" (Ty.UInt 8) in
      let state = reg_enum ~loc:__POS__ m "state" rx_s "Idle" in
      let data = reg_ ~loc:__POS__ m "data" (Ty.UInt 8) in
      let bit_count = reg_init ~loc:__POS__ m "bit_count" (lit 3 0) in
      let baud = reg_init ~loc:__POS__ m "baud" (lit (divw + 1) 0) in
      let valid = reg_init ~loc:__POS__ m "valid" false_ in
      connect m out.valid valid;
      connect m out.bits data;
      when_ ~loc:__POS__ m (fire out) (fun () -> connect m valid false_);
      let at_period = node m "at_period" (baud ==: lit (divw + 1) (div - 1)) in
      let at_half = node m "at_half" (baud ==: lit (divw + 1) (div / 2)) in
      connect m baud (mux_s at_period (lit (divw + 1) 0) (baud +: lit (divw + 1) 1));
      switch ~loc:__POS__ m state
        [
          ( enum_value rx_s "Idle",
            fun () ->
              when_ ~loc:__POS__ m (not_s rxd) (fun () ->
                  connect m baud (lit (divw + 1) 0);
                  connect m state (enum_value rx_s "Start")) );
          ( enum_value rx_s "Start",
            fun () ->
              when_ ~loc:__POS__ m at_period (fun () ->
                  connect m bit_count (lit 3 0);
                  connect m state (enum_value rx_s "Data")) );
          ( enum_value rx_s "Data",
            fun () ->
              when_ ~loc:__POS__ m at_half (fun () ->
                  connect m data (cat_s rxd (bits_s data ~hi:7 ~lo:1)));
              when_ ~loc:__POS__ m at_period (fun () ->
                  when_else ~loc:__POS__ m
                    (bit_count ==: lit 3 7)
                    (fun () -> connect m state (enum_value rx_s "Stop"))
                    (fun () -> connect m bit_count (bit_count +: lit 3 1))) );
          ( enum_value rx_s "Stop",
            fun () ->
              when_ ~loc:__POS__ m at_period (fun () ->
                  connect m valid true_;
                  connect m state (enum_value rx_s "Idle")) );
        ]);
  Dsl.module_ cb "Uart" (fun m ->
      let open Dsl in
      let in_ = decoupled_input ~loc:__POS__ m "io_in" (Ty.UInt 8) in
      let out = decoupled_output ~loc:__POS__ m "io_out" (Ty.UInt 8) in
      let loopback = input ~loc:__POS__ m "loopback" (Ty.UInt 1) in
      let rxd_in = input ~loc:__POS__ m "rxd" (Ty.UInt 1) in
      let txd_out = output ~loc:__POS__ m "txd" (Ty.UInt 1) in
      connect m (instance m "tx" "UartTx" "io_in_valid") in_.valid;
      connect m (instance m "tx" "UartTx" "io_in_bits") in_.bits;
      connect m in_.ready (instance m "tx" "UartTx" "io_in_ready");
      let txd = instance m "tx" "UartTx" "txd" in
      connect m txd_out txd;
      connect m (instance m "rx" "UartRx" "rxd") (mux_s loopback txd rxd_in);
      connect m (instance m "rx" "UartRx" "io_out_ready") out.ready;
      connect m out.valid (instance m "rx" "UartRx" "io_out_valid");
      connect m out.bits (instance m "rx" "UartRx" "io_out_bits"));
  Dsl.finalize cb

let tx_enum = "TxState"
let rx_enum = "RxState"
