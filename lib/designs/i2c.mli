(** An I2C master peripheral — the fuzzing target of §5.4: a deep FSM
    whose branches need long, structured input sequences. *)

val enum_name : string

val circuit : ?div:int -> unit -> Sic_ir.Circuit.t
(** Ports: [io_cmd] (decoupled 16-bit command: [15:9] address, [8] read
    flag, [7:0] data), [io_resp] (decoupled read data), [sda_in], [scl],
    [sda_out], [busy], [nack_seen]. *)
