(** A TileLink-UL style memory slave (Table 2's TLRAM): datapath-heavy,
    branch-poor — single-digit line covers, many toggle bits. *)

val circuit : ?addr_bits:int -> unit -> Sic_ir.Circuit.t
(** Ports: [io_a] (decoupled request: bit 0 opcode get/put, then address,
    then 32-bit put data), [io_d] (decoupled response: 32-bit data plus
    opcode echo in bit 32). *)
