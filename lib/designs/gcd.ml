(** The canonical decoupled GCD unit: accepts an operand pair over a
    DecoupledIO-style input, iterates by subtraction, and produces the
    result over a decoupled output. *)

open Sic_ir

let circuit ?(width = 16) () : Circuit.t =
  let cb = Dsl.create_circuit "GCD" in
  Dsl.module_ cb "GCD" (fun m ->
      let open Dsl in
      let in_ = decoupled_input ~loc:__POS__ m "io_in" (Ty.UInt (2 * width)) in
      let out = decoupled_output ~loc:__POS__ m "io_out" (Ty.UInt width) in
      let x = reg_ ~loc:__POS__ m "x" (Ty.UInt width) in
      let y = reg_ ~loc:__POS__ m "y" (Ty.UInt width) in
      let busy = reg_init ~loc:__POS__ m "busy" false_ in
      connect m in_.ready (not_s busy);
      connect m out.valid (busy &: (y ==: lit width 0));
      connect m out.bits x;
      when_ ~loc:__POS__ m (fire in_) (fun () ->
          connect m x (bits_s in_.bits ~hi:((2 * width) - 1) ~lo:width);
          connect m y (bits_s in_.bits ~hi:(width - 1) ~lo:0);
          connect m busy true_);
      when_ ~loc:__POS__ m
        (busy &: (y <>: lit width 0))
        (fun () ->
          when_else ~loc:__POS__ m (x >: y)
            (fun () -> connect m x (x -: y))
            (fun () -> connect m y (y -: x)));
      when_ ~loc:__POS__ m (fire out) (fun () -> connect m busy false_));
  Dsl.finalize cb
