(** A RISC-V style ALU module, instantiated by the cores. Operation codes
    follow the RV32I funct encodings. *)

open Sic_ir

let op_add = 0
let op_sub = 1
let op_and = 2
let op_or = 3
let op_xor = 4
let op_slt = 5
let op_sltu = 6
let op_sll = 7
let op_srl = 8
let op_sra = 9
let op_copy_b = 10

(** Adds an [Alu] module (width [w]) to [cb]; returns nothing — instantiate
    it by name. Ports: [a], [b], [op], [out], [zero]. *)
let define ?(width = 32) (cb : Dsl.circuit_builder) =
  Dsl.module_ cb "Alu" (fun m ->
      let open Dsl in
      let a = input ~loc:__POS__ m "a" (Ty.UInt width) in
      let b = input ~loc:__POS__ m "b" (Ty.UInt width) in
      let op = input ~loc:__POS__ m "op" (Ty.UInt 4) in
      let out = output ~loc:__POS__ m "out" (Ty.UInt width) in
      let zero = output ~loc:__POS__ m "zero" (Ty.UInt 1) in
      let shamt = node m "shamt" (bits_s b ~hi:4 ~lo:0) in
      let result = wire ~loc:__POS__ m "result" (Ty.UInt width) in
      connect m result (a +: b);
      switch ~loc:__POS__ m op
        [
          (lit 4 op_sub, fun () -> connect m result (a -: b));
          (lit 4 op_and, fun () -> connect m result (a &: b));
          (lit 4 op_or, fun () -> connect m result (a |: b));
          (lit 4 op_xor, fun () -> connect m result (a ^: b));
          (lit 4 op_slt, fun () -> connect m result (resize (as_sint a <: as_sint b) width));
          (lit 4 op_sltu, fun () -> connect m result (resize (a <: b) width));
          (lit 4 op_sll, fun () -> connect m result (resize (dshl_s a shamt) width));
          (lit 4 op_srl, fun () -> connect m result (dshr_s a shamt));
          ( lit 4 op_sra,
            fun () -> connect m result (as_uint (dshr_s (as_sint a) shamt)) );
          (lit 4 op_copy_b, fun () -> connect m result b);
        ];
      connect m out result;
      connect m zero (result ==: lit width 0))
