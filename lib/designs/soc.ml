(** Synthetic SoC generators for the FireSim-style experiments (§5.2).

    The paper instruments two Chipyard SoCs: a quad-core Rocket design
    (8060 line cover points) and a single-core BOOM design (12059 cover
    points). Neither generator exists here, so these SoCs are built from
    our own components — riscv-mini core complexes (core + I$/D$ +
    regfile + ALU), neuromorphic accelerators, UARTs and I2C controllers —
    scaled so that the *relative* sizes match: the BOOM-class
    configuration carries roughly 1.5x the cover points and logic of the
    Rocket-class one. What the experiments then measure (counter-width
    scaling, scan-out latency, removal savings) depends only on the number
    of cover points and the size of the base design, which is exactly
    what is preserved. *)

open Sic_ir

type config = {
  soc_name : string;
  cores : int;
  cache_addr_bits : int;
  accelerators : int;  (** NeuroProc-style vector tiles *)
  accel_neurons : int;  (** LIF units per tile (branches scale with this) *)
  uarts : int;
  i2cs : int;
}

(** Paper-scale configurations: cover-point counts land near the paper's
    8060 (Rocket-class) and 12059 (BOOM-class). Used by the resource-model
    and removal experiments. *)
let rocket_config =
  {
    soc_name = "RocketSoC";
    cores = 4;
    cache_addr_bits = 6;
    accelerators = 5;
    accel_neurons = 374;
    uarts = 2;
    i2cs = 1;
  }

let boom_config =
  {
    soc_name = "BoomSoC";
    cores = 6;
    cache_addr_bits = 7;
    accelerators = 7;
    accel_neurons = 400;
    uarts = 3;
    i2cs = 2;
  }

(** Simulation-scale configurations for experiments that step the SoC for
    many cycles (end-to-end scan-chain runs, cross-backend demos). *)
let rocket_sim_config =
  { rocket_config with soc_name = "RocketSoCSim"; accelerators = 1; accel_neurons = 16 }

let boom_sim_config =
  { boom_config with soc_name = "BoomSoCSim"; accelerators = 2; accel_neurons = 16 }

(** Build a SoC circuit from a config. Top-level ports: [run], a loader
    backdoor (broadcast, with a core-select), peripheral pins, and an
    xor-folded observation bus that keeps the whole design live. *)
let circuit (cfg : config) : Circuit.t =
  let p = { Riscv_mini.addr_bits = cfg.cache_addr_bits } in
  let cb = Dsl.create_circuit cfg.soc_name in
  let cache_st =
    Dsl.enum cb Riscv_mini.cache_enum [ "Idle"; "Refill"; "WriteThrough"; "Respond" ]
  in
  let core_st =
    Dsl.enum cb Riscv_mini.core_enum [ "Halt"; "Fetch"; "WaitI"; "Exec"; "Mem"; "WaitD" ]
  in
  let tx_st = Dsl.enum cb "SocTxState" [ "Idle"; "Start"; "Data"; "Stop" ] in
  Alu.define cb;
  Riscv_mini.define_regfile cb;
  Riscv_mini.define_cache p cache_st cb;
  Riscv_mini.define_core p core_st cb;
  (* a small TX-only UART module for the peripheral tiles *)
  Dsl.module_ cb "SocUartTx" (fun m ->
      let open Dsl in
      let in_ = decoupled_input ~loc:__POS__ m "io_in" (Ty.UInt 8) in
      let txd = output ~loc:__POS__ m "txd" (Ty.UInt 1) in
      let state = reg_enum ~loc:__POS__ m "state" tx_st "Idle" in
      let data = reg_ ~loc:__POS__ m "data" (Ty.UInt 8) in
      let count = reg_init ~loc:__POS__ m "count" (lit 3 0) in
      connect m txd true_;
      connect m in_.ready (is tx_st "Idle" state);
      switch ~loc:__POS__ m state
        [
          ( enum_value tx_st "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire in_) (fun () ->
                  connect m data in_.bits;
                  connect m state (enum_value tx_st "Start")) );
          ( enum_value tx_st "Start",
            fun () ->
              connect m txd false_;
              connect m count (lit 3 0);
              connect m state (enum_value tx_st "Data") );
          ( enum_value tx_st "Data",
            fun () ->
              connect m txd (dshr_s data (resize count 3));
              when_else ~loc:__POS__ m (count ==: lit 3 7)
                (fun () -> connect m state (enum_value tx_st "Stop"))
                (fun () -> connect m count (count +: lit 3 1)) );
          ( enum_value tx_st "Stop",
            fun () -> connect m state (enum_value tx_st "Idle") );
        ]);
  (* NeuroProc-style accelerator tile: one parallel LIF unit per neuron,
     so its branch count — and thus its line-coverage contribution —
     scales with [accel_neurons], as in a real generator *)
  let neurons = cfg.accel_neurons in
  Dsl.module_ cb "AccelTile" (fun m ->
      let open Dsl in
      let in_spikes = input ~loc:__POS__ m "in_spikes" (Ty.UInt 8) in
      let enable = input ~loc:__POS__ m "enable" (Ty.UInt 1) in
      let out = output ~loc:__POS__ m "out" (Ty.UInt 8) in
      let fires =
        List.init neurons (fun i ->
            let pot = reg_init ~loc:__POS__ m (Printf.sprintf "pot_%d" i) (lit 10 0) in
            let fired = reg_init ~loc:__POS__ m (Printf.sprintf "fired_%d" i) false_ in
            connect m fired false_;
            when_ ~loc:__POS__ m enable (fun () ->
                let bumped = wire ~loc:__POS__ m (Printf.sprintf "bumped_%d" i) (Ty.UInt 11) in
                connect m bumped (resize pot 11);
                when_ ~loc:__POS__ m (bit_s in_spikes (i mod 8)) (fun () ->
                    connect m bumped (pot +: lit 10 (17 + (i mod 13))));
                when_else ~loc:__POS__ m (bumped >: lit 11 200)
                  (fun () ->
                    connect m pot (lit 10 0);
                    connect m fired true_)
                  (fun () -> connect m pot (resize (mux_s (bumped >: lit 11 0) (bumped -: lit 11 1) bumped) 10)));
            fired)
      in
      let folded =
        (* fold per-neuron fires into the 8-bit observation bus *)
        List.fold_left
          (fun acc (i, f) ->
            acc ^: resize (dshl_s f (lit 3 (i mod 8))) 8)
          (lit 8 0)
          (List.mapi (fun i f -> (i, f)) fires)
      in
      connect m out folded);
  Dsl.module_ cb cfg.soc_name (fun m ->
      let open Dsl in
      let aw = cfg.cache_addr_bits in
      let run = input ~loc:__POS__ m "run" (Ty.UInt 1) in
      let load_en = input ~loc:__POS__ m "load_en" (Ty.UInt 1) in
      let load_core = input ~loc:__POS__ m "load_core" (Ty.UInt 4) in
      let load_side = input ~loc:__POS__ m "load_side" (Ty.UInt 1) in
      let load_addr = input ~loc:__POS__ m "load_addr" (Ty.UInt aw) in
      let load_data = input ~loc:__POS__ m "load_data" (Ty.UInt 32) in
      let spike_in = input ~loc:__POS__ m "spike_in" (Ty.UInt 8) in
      let observe = output ~loc:__POS__ m "observe" (Ty.UInt 32) in
      let pins = output ~loc:__POS__ m "pins" (Ty.UInt 8) in
      let obs = ref (lit 32 0) in
      let pin_list = ref [] in
      for k = 0 to cfg.cores - 1 do
        let core = Printf.sprintf "core%d" k in
        let icache = Printf.sprintf "icache%d" k in
        let dcache = Printf.sprintf "dcache%d" k in
        connect m (instance m core "Core" "run") run;
        let sel = load_core ==: lit 4 k in
        connect m (instance m icache "Cache" "req_valid") (instance m core "Core" "i_req_valid");
        connect m (instance m icache "Cache" "req_rw") false_;
        connect m (instance m icache "Cache" "req_addr") (instance m core "Core" "i_req_addr");
        connect m (instance m icache "Cache" "req_wdata") (lit 32 0);
        connect m (instance m core "Core" "i_resp_valid") (instance m icache "Cache" "resp_valid");
        connect m (instance m core "Core" "i_resp_rdata") (instance m icache "Cache" "resp_rdata");
        connect m (instance m icache "Cache" "load_en") (load_en &: sel &: not_s load_side);
        connect m (instance m icache "Cache" "load_addr") load_addr;
        connect m (instance m icache "Cache" "load_data") load_data;
        connect m (instance m dcache "Cache" "req_valid") (instance m core "Core" "d_req_valid");
        connect m (instance m dcache "Cache" "req_rw") (instance m core "Core" "d_req_rw");
        connect m (instance m dcache "Cache" "req_addr") (instance m core "Core" "d_req_addr");
        connect m (instance m dcache "Cache" "req_wdata") (instance m core "Core" "d_req_wdata");
        connect m (instance m core "Core" "d_resp_valid") (instance m dcache "Cache" "resp_valid");
        connect m (instance m core "Core" "d_resp_rdata") (instance m dcache "Cache" "resp_rdata");
        connect m (instance m dcache "Cache" "load_en") (load_en &: sel &: load_side);
        connect m (instance m dcache "Cache" "load_addr") load_addr;
        connect m (instance m dcache "Cache" "load_data") load_data;
        obs := !obs ^: instance m core "Core" "pc_out"
      done;
      for k = 0 to cfg.accelerators - 1 do
        let a = Printf.sprintf "accel%d" k in
        connect m (instance m a "AccelTile" "enable") run;
        connect m (instance m a "AccelTile" "in_spikes") spike_in;
        obs := !obs ^: resize (instance m a "AccelTile" "out") 32
      done;
      for k = 0 to cfg.uarts - 1 do
        let u = Printf.sprintf "uart%d" k in
        connect m (instance m u "SocUartTx" "io_in_valid") run;
        connect m (instance m u "SocUartTx" "io_in_bits") (bits_s load_data ~hi:7 ~lo:0);
        pin_list := instance m u "SocUartTx" "txd" :: !pin_list
      done;
      for k = 0 to cfg.i2cs - 1 do
        let name = Printf.sprintf "i2cbit%d" k in
        (* lightweight I2C pad toggler per instance *)
        let r = reg_init ~loc:__POS__ m name false_ in
        when_ ~loc:__POS__ m run (fun () -> connect m r (not_s r));
        pin_list := r :: !pin_list
      done;
      connect m observe !obs;
      let pins_v =
        List.fold_left (fun acc s -> resize (cat_s (resize acc 7) s) 8) (lit 8 0) !pin_list
      in
      connect m pins pins_v);
  Dsl.finalize cb
