(** A circular-buffer queue with decoupled ends (Chisel's [Queue]). *)

val circuit : ?width:int -> ?depth:int -> unit -> Sic_ir.Circuit.t
(** [depth] must be a power of two >= 2. Ports: [io_enq] (decoupled in),
    [io_deq] (decoupled out), [io_count]. *)
