(** A spiking neuromorphic processor (Table 2's NeuroProc): a fully
    parallel bank of leaky integrate-and-fire neurons from a generator
    loop, so branch counts scale with the neuron count. *)

val circuit :
  ?neurons:int -> ?threshold:int -> ?leak:int -> ?weight:int -> unit -> Sic_ir.Circuit.t
(** Ports: [in_spikes] ([neurons] wide), [enable], [out_spikes] (last
    cycle's firings), [spiked_any]. *)
