(** A compact RV32I processor in the spirit of riscv-mini [14].

    A multicycle core (fetch / execute / memory / write-back FSM) with a
    register file and two instances of one shared [Cache] module — the
    instruction cache and the data cache use *the same RTL*, but the
    I-side's write request input is tied off. The paper's §5.5 used formal
    cover-trace generation on riscv-mini to discover exactly this: the
    code blocks for cache write accesses can never be exercised on the
    instruction cache. The same experiment reproduces here.

    Programs are loaded through a dedicated loader port (a debug backdoor
    into both caches), so all backends — including BMC — drive the design
    purely through its ports. *)

open Sic_ir

let core_enum = "CoreState"
let cache_enum = "CacheState"

type params = { addr_bits : int (* word-address width of each cache *) }

let default_params = { addr_bits = 6 }

(* small configuration for bit-blasting (§5.5) *)
let formal_params = { addr_bits = 3 }

(* opcodes *)
let op_lui = 0x37
let op_imm = 0x13
let op_op = 0x33
let op_branch = 0x63
let op_load = 0x03
let op_store = 0x23
let op_jal = 0x6f
let op_jalr = 0x67

let define_cache (p : params) st (cb : Dsl.circuit_builder) =
  Dsl.module_ cb "Cache" (fun m ->
      let open Dsl in
      let aw = p.addr_bits in
      let req_valid = input ~loc:__POS__ m "req_valid" (Ty.UInt 1) in
      let req_rw = input ~loc:__POS__ m "req_rw" (Ty.UInt 1) in
      let req_addr = input ~loc:__POS__ m "req_addr" (Ty.UInt aw) in
      let req_wdata = input ~loc:__POS__ m "req_wdata" (Ty.UInt 32) in
      let req_ready = output ~loc:__POS__ m "req_ready" (Ty.UInt 1) in
      let resp_valid = output ~loc:__POS__ m "resp_valid" (Ty.UInt 1) in
      let resp_rdata = output ~loc:__POS__ m "resp_rdata" (Ty.UInt 32) in
      let load_en = input ~loc:__POS__ m "load_en" (Ty.UInt 1) in
      let load_addr = input ~loc:__POS__ m "load_addr" (Ty.UInt aw) in
      let load_data = input ~loc:__POS__ m "load_data" (Ty.UInt 32) in
      let dbg_addr = input ~loc:__POS__ m "dbg_addr" (Ty.UInt aw) in
      let dbg_data = output ~loc:__POS__ m "dbg_data" (Ty.UInt 32) in
      let data =
        mem ~loc:__POS__ m "data" (Ty.UInt 32) ~depth:(1 lsl aw) ~readers:[ "r"; "dbg" ]
          ~writers:[ "w"; "loader" ]
      in
      connect m dbg_data (mem_read data "dbg" dbg_addr);
      let state = reg_enum ~loc:__POS__ m "state" st "Idle" in
      let valids = reg_init ~loc:__POS__ m "valids" (lit (1 lsl aw) 0) in
      let addr_r = reg_ ~loc:__POS__ m "addr_r" (Ty.UInt aw) in
      let wdata_r = reg_ ~loc:__POS__ m "wdata_r" (Ty.UInt 32) in
      let refill_count = reg_init ~loc:__POS__ m "refill_count" (lit 2 0) in
      let one_hot a = resize (dshl_s (lit 1 1) a) (1 lsl aw) in
      connect m req_ready (is st "Idle" state);
      connect m resp_valid false_;
      connect m resp_rdata (mem_read data "r" addr_r);
      (* backdoor loader, active in any state *)
      when_ ~loc:__POS__ m load_en (fun () ->
          mem_write data "loader" ~addr:load_addr ~data:load_data;
          connect m valids (valids |: one_hot load_addr));
      let hit = node m "hit" (orr_s (dshr_s valids req_addr &: lit 1 1)) in
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Idle",
            fun () ->
              when_ ~loc:__POS__ m req_valid (fun () ->
                  connect m addr_r req_addr;
                  connect m wdata_r req_wdata;
                  when_else ~loc:__POS__ m req_rw
                    (fun () ->
                      (* write path: never exercised by the I-side *)
                      connect m state (enum_value st "WriteThrough"))
                    (fun () ->
                      when_else ~loc:__POS__ m hit
                        (fun () -> connect m state (enum_value st "Respond"))
                        (fun () ->
                          connect m refill_count (lit 2 0);
                          connect m state (enum_value st "Refill")))) );
          ( enum_value st "Refill",
            fun () ->
              (* model a miss penalty; the refill itself is a no-op since
                 the loader is the only source of real data *)
              when_else ~loc:__POS__ m
                (refill_count ==: lit 2 2)
                (fun () ->
                  connect m valids (valids |: one_hot addr_r);
                  connect m state (enum_value st "Respond"))
                (fun () -> connect m refill_count (refill_count +: lit 2 1)) );
          ( enum_value st "WriteThrough",
            fun () ->
              mem_write data "w" ~addr:addr_r ~data:wdata_r;
              connect m valids (valids |: one_hot addr_r);
              connect m state (enum_value st "Respond") );
          ( enum_value st "Respond",
            fun () ->
              connect m resp_valid true_;
              connect m state (enum_value st "Idle") );
        ])

let define_regfile (cb : Dsl.circuit_builder) =
  Dsl.module_ cb "Regfile" (fun m ->
      let open Dsl in
      let raddr1 = input ~loc:__POS__ m "raddr1" (Ty.UInt 5) in
      let raddr2 = input ~loc:__POS__ m "raddr2" (Ty.UInt 5) in
      let rdata1 = output ~loc:__POS__ m "rdata1" (Ty.UInt 32) in
      let rdata2 = output ~loc:__POS__ m "rdata2" (Ty.UInt 32) in
      let wen = input ~loc:__POS__ m "wen" (Ty.UInt 1) in
      let waddr = input ~loc:__POS__ m "waddr" (Ty.UInt 5) in
      let wdata = input ~loc:__POS__ m "wdata" (Ty.UInt 32) in
      let regs =
        mem ~loc:__POS__ m "regs" (Ty.UInt 32) ~depth:32 ~readers:[ "r1"; "r2" ]
          ~writers:[ "w" ]
      in
      connect m rdata1 (mux_s (raddr1 ==: lit 5 0) (lit 32 0) (mem_read regs "r1" raddr1));
      connect m rdata2 (mux_s (raddr2 ==: lit 5 0) (lit 32 0) (mem_read regs "r2" raddr2));
      when_ ~loc:__POS__ m (wen &: (waddr <>: lit 5 0)) (fun () ->
          mem_write regs "w" ~addr:waddr ~data:wdata))

let define_core (p : params) st (cb : Dsl.circuit_builder) =
  Dsl.module_ cb "Core" (fun m ->
      let open Dsl in
      let aw = p.addr_bits in
      (* imem interface *)
      let i_req_valid = output ~loc:__POS__ m "i_req_valid" (Ty.UInt 1) in
      let i_req_addr = output ~loc:__POS__ m "i_req_addr" (Ty.UInt aw) in
      let i_resp_valid = input ~loc:__POS__ m "i_resp_valid" (Ty.UInt 1) in
      let i_resp_rdata = input ~loc:__POS__ m "i_resp_rdata" (Ty.UInt 32) in
      (* dmem interface *)
      let d_req_valid = output ~loc:__POS__ m "d_req_valid" (Ty.UInt 1) in
      let d_req_rw = output ~loc:__POS__ m "d_req_rw" (Ty.UInt 1) in
      let d_req_addr = output ~loc:__POS__ m "d_req_addr" (Ty.UInt aw) in
      let d_req_wdata = output ~loc:__POS__ m "d_req_wdata" (Ty.UInt 32) in
      let d_resp_valid = input ~loc:__POS__ m "d_resp_valid" (Ty.UInt 1) in
      let d_resp_rdata = input ~loc:__POS__ m "d_resp_rdata" (Ty.UInt 32) in
      let run = input ~loc:__POS__ m "run" (Ty.UInt 1) in
      let pc_out = output ~loc:__POS__ m "pc_out" (Ty.UInt 32) in
      let retired = output ~loc:__POS__ m "retired" (Ty.UInt 1) in
      let state = reg_enum ~loc:__POS__ m "state" st "Halt" in
      let pc = reg_init ~loc:__POS__ m "pc" (lit 32 0) in
      let inst = reg_ ~loc:__POS__ m "inst" (Ty.UInt 32) in
      connect m pc_out pc;
      connect m retired false_;
      connect m i_req_valid false_;
      connect m i_req_addr (bits_s pc ~hi:(aw + 1) ~lo:2);
      connect m d_req_valid false_;
      connect m d_req_rw false_;
      connect m d_req_addr (lit aw 0);
      connect m d_req_wdata (lit 32 0);
      (* decode fields *)
      let opcode = node m "opcode" (bits_s inst ~hi:6 ~lo:0) in
      let rd = node m "rd" (bits_s inst ~hi:11 ~lo:7) in
      let funct3 = node m "funct3" (bits_s inst ~hi:14 ~lo:12) in
      let rs1 = node m "rs1" (bits_s inst ~hi:19 ~lo:15) in
      let rs2 = node m "rs2" (bits_s inst ~hi:24 ~lo:20) in
      let funct7 = node m "funct7" (bits_s inst ~hi:31 ~lo:25) in
      let imm_i =
        node m "imm_i" (as_uint (resize (as_sint (bits_s inst ~hi:31 ~lo:20)) 32))
      in
      let imm_s =
        node m "imm_s"
          (as_uint
             (resize (as_sint (cat_s (bits_s inst ~hi:31 ~lo:25) (bits_s inst ~hi:11 ~lo:7))) 32))
      in
      let imm_b =
        node m "imm_b"
          (as_uint
             (resize
                (as_sint
                   (cat_s
                      (cat_s (bit_s inst 31) (bit_s inst 7))
                      (cat_s (bits_s inst ~hi:30 ~lo:25)
                         (cat_s (bits_s inst ~hi:11 ~lo:8) (lit 1 0)))))
                32))
      in
      let imm_j =
        node m "imm_j"
          (as_uint
             (resize
                (as_sint
                   (cat_s
                      (cat_s (bit_s inst 31) (bits_s inst ~hi:19 ~lo:12))
                      (cat_s (bit_s inst 20)
                         (cat_s (bits_s inst ~hi:30 ~lo:21) (lit 1 0)))))
                32))
      in
      let imm_u = node m "imm_u" (shl_s (bits_s inst ~hi:31 ~lo:12) 12) in
      (* register file *)
      connect m (instance m "rf" "Regfile" "raddr1") rs1;
      connect m (instance m "rf" "Regfile" "raddr2") rs2;
      let rv1 = instance m "rf" "Regfile" "rdata1" in
      let rv2 = instance m "rf" "Regfile" "rdata2" in
      let rf_wen = wire ~loc:__POS__ m "rf_wen" (Ty.UInt 1) in
      let rf_wdata = wire ~loc:__POS__ m "rf_wdata" (Ty.UInt 32) in
      connect m rf_wen false_;
      connect m rf_wdata (lit 32 0);
      connect m (instance m "rf" "Regfile" "wen") rf_wen;
      connect m (instance m "rf" "Regfile" "waddr") rd;
      connect m (instance m "rf" "Regfile" "wdata") rf_wdata;
      (* ALU *)
      let alu_a = wire ~loc:__POS__ m "alu_a" (Ty.UInt 32) in
      let alu_b = wire ~loc:__POS__ m "alu_b" (Ty.UInt 32) in
      let alu_op = wire ~loc:__POS__ m "alu_op" (Ty.UInt 4) in
      connect m alu_a rv1;
      connect m alu_b rv2;
      connect m alu_op (lit 4 Alu.op_add);
      connect m (instance m "alu" "Alu" "a") alu_a;
      connect m (instance m "alu" "Alu" "b") alu_b;
      connect m (instance m "alu" "Alu" "op") alu_op;
      let alu_out = instance m "alu" "Alu" "out" in
      (* the funct3/funct7 -> alu op mapping used by OP and OP-IMM *)
      let alu_code ~with_sub =
        switch ~loc:__POS__ m funct3
          [
            ( lit 3 0,
              fun () ->
                if with_sub then
                  when_ ~loc:__POS__ m (bit_s funct7 5) (fun () ->
                      connect m alu_op (lit 4 Alu.op_sub)) );
            (lit 3 7, fun () -> connect m alu_op (lit 4 Alu.op_and));
            (lit 3 6, fun () -> connect m alu_op (lit 4 Alu.op_or));
            (lit 3 4, fun () -> connect m alu_op (lit 4 Alu.op_xor));
            (lit 3 2, fun () -> connect m alu_op (lit 4 Alu.op_slt));
            (lit 3 3, fun () -> connect m alu_op (lit 4 Alu.op_sltu));
            (lit 3 1, fun () -> connect m alu_op (lit 4 Alu.op_sll));
            ( lit 3 5,
              fun () ->
                when_else ~loc:__POS__ m (bit_s funct7 5)
                  (fun () -> connect m alu_op (lit 4 Alu.op_sra))
                  (fun () -> connect m alu_op (lit 4 Alu.op_srl)) );
          ]
      in
      let pc_plus4 = node m "pc_plus4" (resize (pc +: lit 32 4) 32) in
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Halt",
            fun () -> when_ ~loc:__POS__ m run (fun () -> connect m state (enum_value st "Fetch"))
          );
          ( enum_value st "Fetch",
            fun () ->
              connect m i_req_valid true_;
              connect m state (enum_value st "WaitI") );
          ( enum_value st "WaitI",
            fun () ->
              when_ ~loc:__POS__ m i_resp_valid (fun () ->
                  connect m inst i_resp_rdata;
                  connect m state (enum_value st "Exec")) );
          ( enum_value st "Exec",
            fun () ->
              connect m state (enum_value st "Fetch");
              connect m retired true_;
              connect m pc pc_plus4;
              switch ~loc:__POS__ m opcode
                ~default:(fun () ->
                  (* undecoded: treated as nop *)
                  ())
                [
                  ( lit 7 op_lui,
                    fun () ->
                      connect m rf_wen true_;
                      connect m rf_wdata imm_u );
                  ( lit 7 op_imm,
                    fun () ->
                      connect m alu_b imm_i;
                      alu_code ~with_sub:false;
                      connect m rf_wen true_;
                      connect m rf_wdata alu_out );
                  ( lit 7 op_op,
                    fun () ->
                      alu_code ~with_sub:true;
                      connect m rf_wen true_;
                      connect m rf_wdata alu_out );
                  ( lit 7 op_branch,
                    fun () ->
                      let taken = wire ~loc:__POS__ m "taken" (Ty.UInt 1) in
                      connect m taken false_;
                      switch ~loc:__POS__ m funct3
                        [
                          (lit 3 0, fun () -> connect m taken (rv1 ==: rv2));
                          (lit 3 1, fun () -> connect m taken (rv1 <>: rv2));
                          (lit 3 4, fun () -> connect m taken (as_sint rv1 <: as_sint rv2));
                          (lit 3 5, fun () -> connect m taken (as_sint rv1 >=: as_sint rv2));
                          (lit 3 6, fun () -> connect m taken (rv1 <: rv2));
                          (lit 3 7, fun () -> connect m taken (rv1 >=: rv2));
                        ];
                      when_ ~loc:__POS__ m taken (fun () ->
                          connect m pc (resize (pc +: imm_b) 32)) );
                  ( lit 7 op_jal,
                    fun () ->
                      connect m rf_wen true_;
                      connect m rf_wdata pc_plus4;
                      connect m pc (resize (pc +: imm_j) 32) );
                  ( lit 7 op_jalr,
                    fun () ->
                      connect m rf_wen true_;
                      connect m rf_wdata pc_plus4;
                      connect m pc
                        (as_uint (resize (rv1 +: imm_i) 32) &: not_s (lit 32 1)) );
                  ( lit 7 op_load,
                    fun () ->
                      connect m retired false_;
                      connect m pc pc;
                      connect m state (enum_value st "Mem") );
                  ( lit 7 op_store,
                    fun () ->
                      connect m retired false_;
                      connect m pc pc;
                      connect m state (enum_value st "Mem") );
                ] );
          ( enum_value st "Mem",
            fun () ->
              connect m d_req_valid true_;
              let ea = node m "ea" (resize (rv1 +: mux_s (opcode ==: lit 7 op_store) imm_s imm_i) 32) in
              connect m d_req_addr (bits_s ea ~hi:(aw + 1) ~lo:2);
              connect m d_req_rw (opcode ==: lit 7 op_store);
              connect m d_req_wdata rv2;
              connect m state (enum_value st "WaitD") );
          ( enum_value st "WaitD",
            fun () ->
              when_ ~loc:__POS__ m d_resp_valid (fun () ->
                  when_ ~loc:__POS__ m (opcode ==: lit 7 op_load) (fun () ->
                      connect m rf_wen true_;
                      connect m rf_wdata d_resp_rdata);
                  connect m retired true_;
                  connect m pc pc_plus4;
                  connect m state (enum_value st "Fetch")) );
        ]);
  ()

(** Build the full riscv-mini circuit. Top-level ports: a [run] enable, a
    loader backdoor into each cache, and observation outputs. *)
let circuit ?(params = default_params) () : Circuit.t =
  let p = params in
  let cb = Dsl.create_circuit "RiscvMini" in
  let cache_st = Dsl.enum cb cache_enum [ "Idle"; "Refill"; "WriteThrough"; "Respond" ] in
  let core_st =
    Dsl.enum cb core_enum [ "Halt"; "Fetch"; "WaitI"; "Exec"; "Mem"; "WaitD" ]
  in
  Alu.define cb;
  define_regfile cb;
  define_cache p cache_st cb;
  define_core p core_st cb;
  Dsl.module_ cb "RiscvMini" (fun m ->
      let open Dsl in
      let aw = p.addr_bits in
      let run = input ~loc:__POS__ m "run" (Ty.UInt 1) in
      let iload_en = input ~loc:__POS__ m "iload_en" (Ty.UInt 1) in
      let iload_addr = input ~loc:__POS__ m "iload_addr" (Ty.UInt aw) in
      let iload_data = input ~loc:__POS__ m "iload_data" (Ty.UInt 32) in
      let dload_en = input ~loc:__POS__ m "dload_en" (Ty.UInt 1) in
      let dload_addr = input ~loc:__POS__ m "dload_addr" (Ty.UInt aw) in
      let dload_data = input ~loc:__POS__ m "dload_data" (Ty.UInt 32) in
      let pc_out = output ~loc:__POS__ m "pc_out" (Ty.UInt 32) in
      let retired = output ~loc:__POS__ m "retired" (Ty.UInt 1) in
      let dbg_addr = input ~loc:__POS__ m "dbg_addr" (Ty.UInt aw) in
      let dbg_data = output ~loc:__POS__ m "dbg_data" (Ty.UInt 32) in
      connect m (instance m "core" "Core" "run") run;
      connect m pc_out (instance m "core" "Core" "pc_out");
      connect m retired (instance m "core" "Core" "retired");
      (* instruction cache: write request tied off — read-only in practice *)
      connect m (instance m "icache" "Cache" "req_valid") (instance m "core" "Core" "i_req_valid");
      connect m (instance m "icache" "Cache" "req_rw") false_;
      connect m (instance m "icache" "Cache" "req_addr") (instance m "core" "Core" "i_req_addr");
      connect m (instance m "icache" "Cache" "req_wdata") (lit 32 0);
      connect m (instance m "core" "Core" "i_resp_valid") (instance m "icache" "Cache" "resp_valid");
      connect m (instance m "core" "Core" "i_resp_rdata") (instance m "icache" "Cache" "resp_rdata");
      connect m (instance m "icache" "Cache" "load_en") iload_en;
      connect m (instance m "icache" "Cache" "load_addr") iload_addr;
      connect m (instance m "icache" "Cache" "load_data") iload_data;
      (* data cache: full read/write *)
      connect m (instance m "dcache" "Cache" "req_valid") (instance m "core" "Core" "d_req_valid");
      connect m (instance m "dcache" "Cache" "req_rw") (instance m "core" "Core" "d_req_rw");
      connect m (instance m "dcache" "Cache" "req_addr") (instance m "core" "Core" "d_req_addr");
      connect m (instance m "dcache" "Cache" "req_wdata") (instance m "core" "Core" "d_req_wdata");
      connect m (instance m "core" "Core" "d_resp_valid") (instance m "dcache" "Cache" "resp_valid");
      connect m (instance m "core" "Core" "d_resp_rdata") (instance m "dcache" "Cache" "resp_rdata");
      connect m (instance m "dcache" "Cache" "load_en") dload_en;
      connect m (instance m "dcache" "Cache" "load_addr") dload_addr;
      connect m (instance m "dcache" "Cache" "load_data") dload_data;
      (* debug reads observe the data cache; the icache's port is tied *)
      connect m (instance m "dcache" "Cache" "dbg_addr") dbg_addr;
      connect m dbg_data (instance m "dcache" "Cache" "dbg_data");
      connect m (instance m "icache" "Cache" "dbg_addr") (lit aw 0));
  Dsl.finalize cb

(** {1 A tiny assembler for tests and benchmarks} *)

type reg = int

let addi rd rs1 imm = (imm land 0xfff) lsl 20 lor (rs1 lsl 15) lor (rd lsl 7) lor op_imm
let add rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (rd lsl 7) lor op_op
let sub rd rs1 rs2 = (0x20 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (rd lsl 7) lor op_op
let and_ rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (7 lsl 12) lor (rd lsl 7) lor op_op
let or_ rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (6 lsl 12) lor (rd lsl 7) lor op_op
let xor_ rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (4 lsl 12) lor (rd lsl 7) lor op_op
let lui rd imm20 = (imm20 lsl 12) lor (rd lsl 7) lor op_lui
let lw rd rs1 imm = (imm land 0xfff) lsl 20 lor (rs1 lsl 15) lor (2 lsl 12) lor (rd lsl 7) lor op_load

let sw rs2 rs1 imm =
  let imm = imm land 0xfff in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (2 lsl 12)
  lor ((imm land 0x1f) lsl 7) lor op_store

let branch funct3 rs1 rs2 imm =
  let imm = imm land 0x1fff in
  let b12 = (imm lsr 12) land 1 and b11 = (imm lsr 11) land 1 in
  let b10_5 = (imm lsr 5) land 0x3f and b4_1 = (imm lsr 1) land 0xf in
  (b12 lsl 31) lor (b10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (b4_1 lsl 8) lor (b11 lsl 7) lor op_branch

let beq rs1 rs2 imm = branch 0 rs1 rs2 imm
let bne rs1 rs2 imm = branch 1 rs1 rs2 imm
let blt rs1 rs2 imm = branch 4 rs1 rs2 imm

let jal rd imm =
  let imm = imm land 0x1fffff in
  let b20 = (imm lsr 20) land 1 and b10_1 = (imm lsr 1) land 0x3ff in
  let b11 = (imm lsr 11) land 1 and b19_12 = (imm lsr 12) land 0xff in
  (b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12) lor (rd lsl 7)
  lor op_jal

let nop = addi 0 0 0
