(** A bit-serial ALU core in the spirit of SERV ("serv-chisel" in Table 2):
    operations stream through a 1-bit datapath over 32 cycles, trading
    time for area. High cycle counts with low activity per cycle — the
    workload profile the activity-driven (ESSENT-style) backend wins on. *)

open Sic_ir

let enum_name = "ServState"

(* op encoding: 0 add, 1 sub, 2 and, 3 or, 4 xor *)
let circuit () : Circuit.t =
  let cb = Dsl.create_circuit "Serv" in
  let st = Dsl.enum cb enum_name [ "Idle"; "Run"; "Done" ] in
  Dsl.module_ cb "Serv" (fun m ->
      let open Dsl in
      (* request: [2:0] op, [34:3] operand a, [66:35] operand b *)
      let req = decoupled_input ~loc:__POS__ m "io_req" (Ty.UInt 67) in
      let resp = decoupled_output ~loc:__POS__ m "io_resp" (Ty.UInt 32) in
      let state = reg_enum ~loc:__POS__ m "state" st "Idle" in
      let op = reg_ ~loc:__POS__ m "op" (Ty.UInt 3) in
      let ra = reg_ ~loc:__POS__ m "ra" (Ty.UInt 32) in
      let rb = reg_ ~loc:__POS__ m "rb" (Ty.UInt 32) in
      let acc = reg_ ~loc:__POS__ m "acc" (Ty.UInt 32) in
      let carry = reg_init ~loc:__POS__ m "carry" false_ in
      let count = reg_init ~loc:__POS__ m "count" (lit 5 0) in
      connect m req.ready (is st "Idle" state);
      connect m resp.valid (is st "Done" state);
      connect m resp.bits acc;
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire req) (fun () ->
                  connect m op (bits_s req.bits ~hi:2 ~lo:0);
                  connect m ra (bits_s req.bits ~hi:34 ~lo:3);
                  connect m rb (bits_s req.bits ~hi:66 ~lo:35);
                  (* subtraction: invert b and seed the carry *)
                  when_ ~loc:__POS__ m (bits_s req.bits ~hi:2 ~lo:0 ==: lit 3 1)
                    (fun () ->
                      connect m rb (not_s (bits_s req.bits ~hi:66 ~lo:35));
                      connect m carry true_);
                  when_ ~loc:__POS__ m (bits_s req.bits ~hi:2 ~lo:0 <>: lit 3 1)
                    (fun () -> connect m carry false_);
                  connect m count (lit 5 0);
                  connect m state (enum_value st "Run")) );
          ( enum_value st "Run",
            fun () ->
              (* one result bit per cycle, LSB-first *)
              let a0 = bit_s ra 0 in
              let b0 = bit_s rb 0 in
              let sum = a0 ^: b0 ^: carry in
              let cout = (a0 &: b0) |: (carry &: (a0 ^: b0)) in
              let bit = wire ~loc:__POS__ m "result_bit" (Ty.UInt 1) in
              connect m bit sum;
              switch ~loc:__POS__ m op
                [
                  (lit 3 2, fun () -> connect m bit (a0 &: b0));
                  (lit 3 3, fun () -> connect m bit (a0 |: b0));
                  (lit 3 4, fun () -> connect m bit (a0 ^: b0));
                ];
              connect m carry cout;
              connect m ra (shr_s ra 1);
              connect m rb (shr_s rb 1);
              connect m acc (cat_s bit (bits_s acc ~hi:31 ~lo:1));
              when_else ~loc:__POS__ m
                (count ==: lit 5 31)
                (fun () -> connect m state (enum_value st "Done"))
                (fun () -> connect m count (count +: lit 5 1)) );
          ( enum_value st "Done",
            fun () ->
              when_ ~loc:__POS__ m (fire resp) (fun () ->
                  connect m state (enum_value st "Idle")) );
        ]);
  Dsl.finalize cb
