(** A compact RV32I processor in the spirit of riscv-mini: a multicycle
    core with a register file and two instances of one shared [Cache]
    module. The instruction cache's write-request input is tied off, so
    the shared write path is unreachable on the I-side — the property the
    paper's §5.5 formal experiment discovers. *)

open Sic_ir

val core_enum : string
val cache_enum : string

type params = { addr_bits : int (** word-address width of each cache *) }

val default_params : params
val formal_params : params
(** Small caches, sized for bit-blasting. *)

(** Component definitions, reusable by SoC generators (children must be
    defined before their parents). Each expects the corresponding enum
    handle created in the same circuit builder. *)

val define_cache : params -> Dsl.enum -> Dsl.circuit_builder -> unit
val define_regfile : Dsl.circuit_builder -> unit
val define_core : params -> Dsl.enum -> Dsl.circuit_builder -> unit

val circuit : ?params:params -> unit -> Circuit.t
(** Top ports: [run], loader backdoors [iload_*]/[dload_*] into the two
    caches, observation outputs [pc_out]/[retired], and a data-cache
    debug read port [dbg_addr]/[dbg_data]. *)

(** {1 A tiny RV32I assembler (for tests and benchmarks)} *)

type reg = int

val op_lui : int
val op_imm : int
val op_op : int
val op_branch : int
val op_load : int
val op_store : int
val op_jal : int
val op_jalr : int

val addi : reg -> reg -> int -> int
val add : reg -> reg -> reg -> int
val sub : reg -> reg -> reg -> int
val and_ : reg -> reg -> reg -> int
val or_ : reg -> reg -> reg -> int
val xor_ : reg -> reg -> reg -> int
val lui : reg -> int -> int
val lw : reg -> reg -> int -> int
val sw : reg -> reg -> int -> int

val branch : int -> reg -> reg -> int -> int
(** [branch funct3 rs1 rs2 byte_offset]. *)

val beq : reg -> reg -> int -> int
val bne : reg -> reg -> int -> int
val blt : reg -> reg -> int -> int
val jal : reg -> int -> int
val nop : int
