(** A bounded counter with enable and wrap — the quickstart design. *)

open Sic_ir

(** [circuit ~width ~limit ()] counts up to [limit], then wraps; [en]
    gates counting, [tick] pulses on wrap. *)
let circuit ?(width = 8) ?(limit = 199) () : Circuit.t =
  let cb = Dsl.create_circuit "Counter" in
  Dsl.module_ cb "Counter" (fun m ->
      let open Dsl in
      let en = input ~loc:__POS__ m "en" (Ty.UInt 1) in
      let value = output ~loc:__POS__ m "value" (Ty.UInt width) in
      let tick = output ~loc:__POS__ m "tick" (Ty.UInt 1) in
      let count = reg_init ~loc:__POS__ m "count" (lit width 0) in
      connect m value count;
      connect m tick false_;
      when_ ~loc:__POS__ m en (fun () ->
          when_else ~loc:__POS__ m
            (count ==: lit width limit)
            (fun () ->
              connect m count (lit width 0);
              connect m tick true_)
            (fun () -> connect m count (count +: lit width 1))));
  Dsl.finalize cb
