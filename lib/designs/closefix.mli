(** Closure-loop fixture: a key-sequence lock with shallow points (random
    reaches them), one deep point ([deep]: three exact keys in a row —
    BMC depth 4, random p ~ 2^-24) and one provably-unreachable point
    ([dead]: behind a state value the machine never assigns). *)

val key1 : int
val key2 : int
val key3 : int
(** The three 8-bit keys, in sequence order. *)

val circuit : unit -> Sic_ir.Circuit.t
(** Ports: [key] in (8 bits), [unlocked] out (pulses after the full
    sequence). *)
