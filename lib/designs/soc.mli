(** Synthetic SoC generators for the FireSim-style experiments (§5.2):
    riscv-mini core complexes plus accelerator, UART and I2C tiles, with
    configurations whose line-cover counts match the paper's
    instrumented Chipyard SoCs (see DESIGN.md for the substitution
    rationale). *)

type config = {
  soc_name : string;
  cores : int;
  cache_addr_bits : int;
  accelerators : int;
  accel_neurons : int;
  uarts : int;
  i2cs : int;
}

val rocket_config : config
(** Paper-scale: ~8060 line cover points (quad-core Rocket analogue). *)

val boom_config : config
(** Paper-scale: ~12059 line cover points (BOOM analogue). *)

val rocket_sim_config : config
val boom_sim_config : config
(** Smaller variants for experiments that step the SoC many cycles. *)

val circuit : config -> Sic_ir.Circuit.t
(** Top ports: [run], a core-selecting loader backdoor ([load_*]),
    [spike_in] for the accelerators, and observation buses
    [observe]/[pins] that keep the whole design live through DCE. *)
