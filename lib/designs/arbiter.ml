(** A round-robin arbiter over N decoupled requesters — an interconnect
    building block with many ready/valid bundles and data-dependent
    control, useful for the ready/valid and mux-toggle metrics. *)

open Sic_ir

(** [circuit ~ports ~width ()]: decoupled inputs [io_in<i>], one decoupled
    output [io_out] carrying the granted payload, and [io_chosen] with the
    winning index. Priority rotates: the requester right after the last
    winner is served first. [ports] must be a power of two. *)
let circuit ?(ports = 4) ?(width = 8) () : Circuit.t =
  assert (ports >= 2 && ports land (ports - 1) = 0);
  let iw = Ty.clog2 ports in
  let cb = Dsl.create_circuit "Arbiter" in
  Dsl.module_ cb "Arbiter" (fun m ->
      let open Dsl in
      let ins =
        List.init ports (fun i ->
            decoupled_input ~loc:__POS__ m (Printf.sprintf "io_in%d" i) (Ty.UInt width))
      in
      let out = decoupled_output ~loc:__POS__ m "io_out" (Ty.UInt width) in
      let chosen = output ~loc:__POS__ m "io_chosen" (Ty.UInt iw) in
      let last = reg_init ~loc:__POS__ m "last" (lit iw (ports - 1)) in
      (* rotating distance of requester i from the slot after the last
         winner: dist_i = (i - last - 1) mod ports *)
      let dists =
        List.init ports (fun i ->
            node m
              (Printf.sprintf "dist%d" i)
              (bits_s
                 (lit (iw + 1) ((i + (2 * ports)) - 1) -: resize last (iw + 1))
                 ~hi:(iw - 1) ~lo:0))
      in
      let winner = wire ~loc:__POS__ m "winner" (Ty.UInt iw) in
      let any = wire ~loc:__POS__ m "any_valid" (Ty.UInt 1) in
      connect m winner (lit iw 0);
      connect m any false_;
      (* scan distances from farthest to nearest; the nearest valid
         requester's connect lands last and wins *)
      for d = ports - 1 downto 0 do
        List.iteri
          (fun i input ->
            when_ ~loc:__POS__ m
              (input.valid &: (List.nth dists i ==: lit iw d))
              (fun () ->
                connect m winner (lit iw i);
                connect m any true_))
          ins
      done;
      connect m chosen winner;
      connect m out.valid any;
      connect m out.bits (lit width 0);
      List.iteri
        (fun i input ->
          connect m input.ready false_;
          when_ ~loc:__POS__ m (any &: (winner ==: lit iw i)) (fun () ->
              connect m out.bits input.bits;
              connect m input.ready out.ready))
        ins;
      when_ ~loc:__POS__ m (fire out) (fun () -> connect m last winner));
  Dsl.finalize cb
