(** A RISC-V style ALU module definition, instantiated by the cores. *)

val op_add : int
val op_sub : int
val op_and : int
val op_or : int
val op_xor : int
val op_slt : int
val op_sltu : int
val op_sll : int
val op_srl : int
val op_sra : int
val op_copy_b : int

val define : ?width:int -> Sic_ir.Dsl.circuit_builder -> unit
(** Adds an [Alu] module (ports [a], [b], [op], [out], [zero]). *)
