(** A small matrix-multiply accelerator in the Gemmini spirit: an n x n
    grid of multiply-accumulate units elaborated by a generator loop, fed
    and drained through decoupled channels, sequenced by an enum FSM.
    Exercises every metric at once: lots of generated branches (line),
    wide accumulators (toggle), a four-state controller (FSM), and two
    decoupled bundles (ready/valid). *)

open Sic_ir

let enum_name = "MmState"

(** [circuit ~n ~width ()] computes C = A x B for n x n matrices of
    [width]-bit unsigned elements. Protocol: stream A row-major then B
    row-major over [io_load] (2n² transfers), wait for [Compute], then
    read C row-major from [io_result] (n² transfers). *)
let circuit ?(n = 3) ?(width = 8) () : Circuit.t =
  let acc_w = (2 * width) + (2 * Ty.clog2 n) in
  let cnt_w = Ty.clog2 ((2 * n * n) + 1) in
  let cb = Dsl.create_circuit "MatMul" in
  let st = Dsl.enum cb enum_name [ "Idle"; "Load"; "Compute"; "Drain" ] in
  Dsl.module_ cb "MatMul" (fun m ->
      let open Dsl in
      let load = decoupled_input ~loc:__POS__ m "io_load" (Ty.UInt width) in
      let result = decoupled_output ~loc:__POS__ m "io_result" (Ty.UInt acc_w) in
      let busy = output ~loc:__POS__ m "busy" (Ty.UInt 1) in
      let state = reg_enum ~loc:__POS__ m "state" st "Idle" in
      let count = reg_init ~loc:__POS__ m "count" (lit cnt_w 0) in
      let a = Array.init (n * n) (fun i -> reg_ ~loc:__POS__ m (Printf.sprintf "a_%d" i) (Ty.UInt width)) in
      let b = Array.init (n * n) (fun i -> reg_ ~loc:__POS__ m (Printf.sprintf "b_%d" i) (Ty.UInt width)) in
      let c =
        Array.init (n * n) (fun i -> reg_ ~loc:__POS__ m (Printf.sprintf "c_%d" i) (Ty.UInt acc_w))
      in
      connect m busy (not_s (is st "Idle" state));
      connect m load.ready (is st "Idle" state |: is st "Load" state);
      connect m result.valid (is st "Drain" state);
      (* result mux: select accumulator [count] during drain *)
      let selected = wire ~loc:__POS__ m "selected" (Ty.UInt acc_w) in
      connect m selected (lit acc_w 0);
      Array.iteri
        (fun i ci ->
          when_ ~loc:__POS__ m (count ==: lit cnt_w i) (fun () -> connect m selected ci))
        c;
      connect m result.bits selected;
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire load) (fun () ->
                  (* first element of A arrives with the transition *)
                  connect m a.(0) load.bits;
                  Array.iter (fun ci -> connect m ci (lit acc_w 0)) c;
                  connect m count (lit cnt_w 1);
                  connect m state (enum_value st "Load")) );
          ( enum_value st "Load",
            fun () ->
              when_ ~loc:__POS__ m (fire load) (fun () ->
                  (* element [count]: A for count < n², else B *)
                  Array.iteri
                    (fun i ai ->
                      when_ ~loc:__POS__ m (count ==: lit cnt_w i) (fun () ->
                          connect m ai load.bits))
                    a;
                  Array.iteri
                    (fun i bi ->
                      when_ ~loc:__POS__ m
                        (count ==: lit cnt_w (i + (n * n)))
                        (fun () -> connect m bi load.bits))
                    b;
                  when_else ~loc:__POS__ m
                    (count ==: lit cnt_w ((2 * n * n) - 1))
                    (fun () ->
                      connect m count (lit cnt_w 0);
                      connect m state (enum_value st "Compute"))
                    (fun () -> connect m count (count +: lit cnt_w 1))) );
          ( enum_value st "Compute",
            fun () ->
              (* one reduction step k = count: every MAC in the grid fires *)
              for i = 0 to n - 1 do
                for j = 0 to n - 1 do
                  let ci = c.((i * n) + j) in
                  (* C[i][j] += A[i][k] * B[k][j] with k selected by count *)
                  Array.iteri
                    (fun k _ ->
                      if k < n then
                        when_ ~loc:__POS__ m (count ==: lit cnt_w k) (fun () ->
                            connect m ci
                              (resize (ci +: (a.((i * n) + k) *: b.((k * n) + j))) acc_w)))
                    (Array.make n ())
                done
              done;
              when_else ~loc:__POS__ m
                (count ==: lit cnt_w (n - 1))
                (fun () ->
                  connect m count (lit cnt_w 0);
                  connect m state (enum_value st "Drain"))
                (fun () -> connect m count (count +: lit cnt_w 1)) );
          ( enum_value st "Drain",
            fun () ->
              when_ ~loc:__POS__ m (fire result) (fun () ->
                  when_else ~loc:__POS__ m
                    (count ==: lit cnt_w ((n * n) - 1))
                    (fun () ->
                      connect m count (lit cnt_w 0);
                      connect m state (enum_value st "Idle"))
                    (fun () -> connect m count (count +: lit cnt_w 1))) );
        ]);
  Dsl.finalize cb
