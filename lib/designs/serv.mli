(** A bit-serial ALU core in the spirit of SERV (Table 2's serv-chisel):
    one result bit per cycle, high cycle counts, low per-cycle activity. *)

val enum_name : string

val circuit : unit -> Sic_ir.Circuit.t
(** Ports: [io_req] (decoupled 67-bit: [2:0] op — add/sub/and/or/xor —
    [34:3] a, [66:35] b), [io_resp] (decoupled 32-bit result). *)
