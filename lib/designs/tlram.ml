(** A TileLink-UL style memory slave (the RocketChip TLRAM of Table 2):
    one decoupled request channel (A) carrying get/put operations and one
    decoupled response channel (D). Mostly datapath and handshakes, very
    few branches — which is why the paper's Table 2 reports only 8 line
    cover points but thousands of toggle points for it. *)

open Sic_ir

(* A-channel request word layout (little-endian fields):
   [0]        opcode: 0 = get, 1 = put
   [addr_w:1] address
   [.. +32]   put data *)

let circuit ?(addr_bits = 8) () : Circuit.t =
  let cb = Dsl.create_circuit "TLRAM" in
  let req_w = 1 + addr_bits + 32 in
  Dsl.module_ cb "TLRAM" (fun m ->
      let open Dsl in
      let a = decoupled_input ~loc:__POS__ m "io_a" (Ty.UInt req_w) in
      let d = decoupled_output ~loc:__POS__ m "io_d" (Ty.UInt 33) in
      let ram =
        mem ~loc:__POS__ ~sync_read:true m "ram" (Ty.UInt 32) ~depth:(1 lsl addr_bits)
          ~readers:[ "r" ] ~writers:[ "w" ]
      in
      let opcode = node m "opcode" (bits_s a.bits ~hi:0 ~lo:0) in
      let addr = node m "addr" (bits_s a.bits ~hi:addr_bits ~lo:1) in
      let wdata = node m "wdata" (bits_s a.bits ~hi:(addr_bits + 32) ~lo:(addr_bits + 1)) in
      (* single in-flight transaction *)
      let resp_pending = reg_init ~loc:__POS__ m "resp_pending" false_ in
      let resp_was_put = reg_init ~loc:__POS__ m "resp_was_put" false_ in
      connect m a.ready (not_s resp_pending) ;
      let _rdata = mem_read ram "r" addr in
      connect m d.valid resp_pending;
      connect m d.bits (cat_s resp_was_put (mem_read ram "r" addr));
      when_ ~loc:__POS__ m (fire a) (fun () ->
          connect m resp_pending true_;
          connect m resp_was_put opcode;
          when_ ~loc:__POS__ m opcode (fun () ->
              mem_write ram "w" ~addr ~data:wdata));
      when_ ~loc:__POS__ m (fire d) (fun () -> connect m resp_pending false_));
  Dsl.finalize cb
