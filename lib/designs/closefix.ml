(** The closure-loop fixture (see [sic close]): a key-sequence lock whose
    cover points split exactly into the three classes the loop must
    handle. Random stimulus covers the shallow points; the [deep] point
    needs three exact 8-bit keys in a row (p ~ 2^-24 per window, so
    random fuzzing essentially never finds it while a bounded model check
    reaches it at depth 4); and the [dead] point sits behind a state the
    machine never assigns, so it is provably unreachable — the exclusion
    path. *)

open Sic_ir

let key1 = 0xA5
let key2 = 0x5A
let key3 = 0xC3

let circuit () : Circuit.t =
  let cb = Dsl.create_circuit "Closefix" in
  Dsl.module_ cb "Closefix" (fun m ->
      let open Dsl in
      let key = input ~loc:__POS__ m "key" (Ty.UInt 8) in
      let unlocked = output ~loc:__POS__ m "unlocked" (Ty.UInt 1) in
      (* st: 0 -> 1 -> 2 -> 0; the encoding has a fourth value (3) that no
         assignment ever produces *)
      let st = reg_init ~loc:__POS__ m "st" (lit 2 0) in
      connect m unlocked false_;
      when_ ~loc:__POS__ m
        ((st ==: lit 2 0) &: (key ==: lit 8 key1))
        (fun () -> connect m st (lit 2 1));
      when_ ~loc:__POS__ m
        ((st ==: lit 2 1) &: (key ==: lit 8 key2))
        (fun () -> connect m st (lit 2 2));
      (* wrong key at any armed state resets the sequence *)
      when_ ~loc:__POS__ m
        ((st <>: lit 2 0) &: (key <>: lit 8 key1) &: (key <>: lit 8 key2)
        &: (key <>: lit 8 key3))
        (fun () -> connect m st (lit 2 0));
      when_ ~loc:__POS__ m
        ((st ==: lit 2 2) &: (key ==: lit 8 key3))
        (fun () ->
          connect m st (lit 2 0);
          connect m unlocked true_;
          cover ~loc:__POS__ m "deep" true_);
      (* st = 3 is never assigned: everything in here is formally dead *)
      when_ ~loc:__POS__ m
        (st ==: lit 2 3)
        (fun () ->
          connect m st (lit 2 0);
          cover ~loc:__POS__ m "dead" true_));
  Dsl.finalize cb
