(** The canonical decoupled GCD unit (quickstart-grade example design). *)

val circuit : ?width:int -> unit -> Sic_ir.Circuit.t
(** Ports: [io_in] (decoupled, [2*width] bits packing the operand pair as
    [a << width | b]), [io_out] (decoupled, [width] bits). *)
