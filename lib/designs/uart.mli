(** An 8N1 UART with enum-FSM transmitter and receiver plus a loopback
    top — the FSM-coverage showcase design. *)

val circuit : ?div:int -> unit -> Sic_ir.Circuit.t
(** [div] is the bit period in clock cycles. Top ports: [io_in]
    (decoupled bytes to transmit), [io_out] (decoupled received bytes),
    [loopback], [rxd], [txd]. *)

val tx_enum : string
val rx_enum : string
