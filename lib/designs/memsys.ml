(** A two-level memory system: a direct-mapped cache with tags and valid
    bits in front of a fixed-latency DRAM model — the "DRAM models with
    realistic access latencies" FireSim composes simulations from (§3.3),
    as a standalone design. Misses stall for the DRAM latency and refill;
    hits respond in two cycles; writes are write-through.

    Request interface (decoupled): [15:0] = address, [16] = rw (1 write),
    [48:17] = write data. Response (decoupled): read data. Outputs
    [hit_count]/[miss_count] expose the performance counters. *)

open Sic_ir

let dram_enum = "DramState"
let cache2_enum = "Cache2State"

type params = {
  index_bits : int;  (** cache lines = 2^index_bits *)
  tag_bits : int;
  dram_latency : int;
}

let default_params = { index_bits = 3; tag_bits = 5; dram_latency = 6 }

let define_dram (p : params) st (cb : Dsl.circuit_builder) =
  let aw = p.index_bits + p.tag_bits in
  let lat_w = Ty.clog2 (p.dram_latency + 1) in
  Dsl.module_ cb "Dram" (fun m ->
      let open Dsl in
      let req_valid = input ~loc:__POS__ m "req_valid" (Ty.UInt 1) in
      let req_rw = input ~loc:__POS__ m "req_rw" (Ty.UInt 1) in
      let req_addr = input ~loc:__POS__ m "req_addr" (Ty.UInt aw) in
      let req_wdata = input ~loc:__POS__ m "req_wdata" (Ty.UInt 32) in
      let req_ready = output ~loc:__POS__ m "req_ready" (Ty.UInt 1) in
      let resp_valid = output ~loc:__POS__ m "resp_valid" (Ty.UInt 1) in
      let resp_rdata = output ~loc:__POS__ m "resp_rdata" (Ty.UInt 32) in
      let store =
        mem ~loc:__POS__ m "store" (Ty.UInt 32) ~depth:(1 lsl aw) ~readers:[ "r" ]
          ~writers:[ "w" ]
      in
      let state = reg_enum ~loc:__POS__ m "state" st "Ready" in
      let timer = reg_init ~loc:__POS__ m "timer" (lit lat_w 0) in
      let addr_r = reg_ ~loc:__POS__ m "addr_r" (Ty.UInt aw) in
      let rw_r = reg_init ~loc:__POS__ m "rw_r" false_ in
      let wdata_r = reg_ ~loc:__POS__ m "wdata_r" (Ty.UInt 32) in
      connect m req_ready (is st "Ready" state);
      connect m resp_valid false_;
      connect m resp_rdata (mem_read store "r" addr_r);
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Ready",
            fun () ->
              when_ ~loc:__POS__ m req_valid (fun () ->
                  connect m addr_r req_addr;
                  connect m rw_r req_rw;
                  connect m wdata_r req_wdata;
                  connect m timer (lit lat_w 0);
                  connect m state (enum_value st "Busy")) );
          ( enum_value st "Busy",
            fun () ->
              (* model the access latency *)
              when_else ~loc:__POS__ m
                (timer ==: lit lat_w (p.dram_latency - 1))
                (fun () ->
                  when_ ~loc:__POS__ m rw_r (fun () ->
                      mem_write store "w" ~addr:addr_r ~data:wdata_r);
                  connect m state (enum_value st "Respond"))
                (fun () -> connect m timer (timer +: lit lat_w 1)) );
          ( enum_value st "Respond",
            fun () ->
              connect m resp_valid true_;
              connect m state (enum_value st "Ready") );
        ])

let define_cache2 (p : params) st (cb : Dsl.circuit_builder) =
  let aw = p.index_bits + p.tag_bits in
  Dsl.module_ cb "Cache2" (fun m ->
      let open Dsl in
      let req = decoupled_input ~loc:__POS__ m "io_req" (Ty.UInt (1 + aw + 32)) in
      let resp = decoupled_output ~loc:__POS__ m "io_resp" (Ty.UInt 32) in
      (* memory-side interface, wired to the DRAM by the top *)
      let m_req_valid = output ~loc:__POS__ m "m_req_valid" (Ty.UInt 1) in
      let m_req_rw = output ~loc:__POS__ m "m_req_rw" (Ty.UInt 1) in
      let m_req_addr = output ~loc:__POS__ m "m_req_addr" (Ty.UInt aw) in
      let m_req_wdata = output ~loc:__POS__ m "m_req_wdata" (Ty.UInt 32) in
      let m_req_ready = input ~loc:__POS__ m "m_req_ready" (Ty.UInt 1) in
      let m_resp_valid = input ~loc:__POS__ m "m_resp_valid" (Ty.UInt 1) in
      let m_resp_rdata = input ~loc:__POS__ m "m_resp_rdata" (Ty.UInt 32) in
      let hit_count = output ~loc:__POS__ m "hit_count" (Ty.UInt 16) in
      let miss_count = output ~loc:__POS__ m "miss_count" (Ty.UInt 16) in
      let lines = 1 lsl p.index_bits in
      let data =
        mem ~loc:__POS__ m "data" (Ty.UInt 32) ~depth:lines ~readers:[ "r" ] ~writers:[ "w" ]
      in
      let tags =
        mem ~loc:__POS__ m "tags" (Ty.UInt p.tag_bits) ~depth:lines ~readers:[ "r" ]
          ~writers:[ "w" ]
      in
      let valids = reg_init ~loc:__POS__ m "valids" (lit lines 0) in
      let state = reg_enum ~loc:__POS__ m "state" st "Idle" in
      let addr_r = reg_ ~loc:__POS__ m "addr_r" (Ty.UInt aw) in
      let rw_r = reg_init ~loc:__POS__ m "rw_r" false_ in
      let wdata_r = reg_ ~loc:__POS__ m "wdata_r" (Ty.UInt 32) in
      let hits = reg_init ~loc:__POS__ m "hits" (lit 16 0) in
      let misses = reg_init ~loc:__POS__ m "misses" (lit 16 0) in
      let index s = bits_s s ~hi:(p.index_bits - 1) ~lo:0 in
      let tag s = bits_s s ~hi:(aw - 1) ~lo:p.index_bits in
      connect m hit_count hits;
      connect m miss_count misses;
      connect m req.ready (is st "Idle" state);
      connect m resp.valid false_;
      connect m resp.bits (mem_read data "r" (index addr_r));
      connect m m_req_valid false_;
      connect m m_req_rw false_;
      connect m m_req_addr addr_r;
      connect m m_req_wdata wdata_r;
      let line_valid =
        node m "line_valid" (orr_s (dshr_s valids (index addr_r) &: lit 1 1))
      in
      let line_tag = node m "line_tag" (mem_read tags "r" (index addr_r)) in
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire req) (fun () ->
                  connect m addr_r (bits_s req.bits ~hi:(aw - 1) ~lo:0);
                  connect m rw_r (bits_s req.bits ~hi:aw ~lo:aw);
                  connect m wdata_r (bits_s req.bits ~hi:(aw + 32) ~lo:(aw + 1));
                  connect m state (enum_value st "Lookup")) );
          ( enum_value st "Lookup",
            fun () ->
              when_else ~loc:__POS__ m rw_r
                (fun () ->
                  (* write-through: update the line if present, always go
                     to DRAM *)
                  when_ ~loc:__POS__ m (line_valid &: (line_tag ==: tag addr_r))
                    (fun () -> mem_write data "w" ~addr:(index addr_r) ~data:wdata_r);
                  connect m misses (misses +: lit 16 1);
                  connect m state (enum_value st "MemReq"))
                (fun () ->
                  when_else ~loc:__POS__ m
                    (line_valid &: (line_tag ==: tag addr_r))
                    (fun () ->
                      connect m hits (hits +: lit 16 1);
                      connect m state (enum_value st "Respond"))
                    (fun () ->
                      connect m misses (misses +: lit 16 1);
                      connect m state (enum_value st "MemReq"))) );
          ( enum_value st "MemReq",
            fun () ->
              connect m m_req_valid true_;
              connect m m_req_rw rw_r;
              when_ ~loc:__POS__ m m_req_ready (fun () ->
                  connect m state (enum_value st "MemWait")) );
          ( enum_value st "MemWait",
            fun () ->
              when_ ~loc:__POS__ m m_resp_valid (fun () ->
                  when_ ~loc:__POS__ m (not_s rw_r) (fun () ->
                      (* refill the line *)
                      mem_write data "w" ~addr:(index addr_r) ~data:m_resp_rdata;
                      mem_write tags "w" ~addr:(index addr_r) ~data:(tag addr_r);
                      connect m valids
                        (valids |: resize (dshl_s (lit 1 1) (index addr_r)) lines));
                  connect m state (enum_value st "Respond")) );
          ( enum_value st "Respond",
            fun () ->
              connect m resp.valid true_;
              when_ ~loc:__POS__ m (fire resp) (fun () ->
                  connect m state (enum_value st "Idle")) );
        ])

(** The composed two-level system. *)
let circuit ?(params = default_params) () : Circuit.t =
  let p = params in
  let aw = p.index_bits + p.tag_bits in
  let cb = Dsl.create_circuit "MemSys" in
  let dram_st = Dsl.enum cb dram_enum [ "Ready"; "Busy"; "Respond" ] in
  let cache_st =
    Dsl.enum cb cache2_enum [ "Idle"; "Lookup"; "MemReq"; "MemWait"; "Respond" ]
  in
  define_dram p dram_st cb;
  define_cache2 p cache_st cb;
  Dsl.module_ cb "MemSys" (fun m ->
      let open Dsl in
      let req = decoupled_input ~loc:__POS__ m "io_req" (Ty.UInt (1 + aw + 32)) in
      let resp = decoupled_output ~loc:__POS__ m "io_resp" (Ty.UInt 32) in
      let hit_count = output ~loc:__POS__ m "hit_count" (Ty.UInt 16) in
      let miss_count = output ~loc:__POS__ m "miss_count" (Ty.UInt 16) in
      connect m (instance m "cache" "Cache2" "io_req_valid") req.valid;
      connect m (instance m "cache" "Cache2" "io_req_bits") req.bits;
      connect m req.ready (instance m "cache" "Cache2" "io_req_ready");
      connect m resp.valid (instance m "cache" "Cache2" "io_resp_valid");
      connect m resp.bits (instance m "cache" "Cache2" "io_resp_bits");
      connect m (instance m "cache" "Cache2" "io_resp_ready") resp.ready;
      connect m (instance m "dram" "Dram" "req_valid") (instance m "cache" "Cache2" "m_req_valid");
      connect m (instance m "dram" "Dram" "req_rw") (instance m "cache" "Cache2" "m_req_rw");
      connect m (instance m "dram" "Dram" "req_addr") (instance m "cache" "Cache2" "m_req_addr");
      connect m (instance m "dram" "Dram" "req_wdata") (instance m "cache" "Cache2" "m_req_wdata");
      connect m (instance m "cache" "Cache2" "m_req_ready") (instance m "dram" "Dram" "req_ready");
      connect m (instance m "cache" "Cache2" "m_resp_valid") (instance m "dram" "Dram" "resp_valid");
      connect m (instance m "cache" "Cache2" "m_resp_rdata") (instance m "dram" "Dram" "resp_rdata");
      connect m hit_count (instance m "cache" "Cache2" "hit_count");
      connect m miss_count (instance m "cache" "Cache2" "miss_count"));
  Dsl.finalize cb
