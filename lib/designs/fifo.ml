(** A circular-buffer queue with decoupled enqueue/dequeue ends, like
    Chisel's [Queue]. *)

open Sic_ir

(** [circuit ~width ~depth ()]; [depth] must be a power of two. *)
let circuit ?(width = 8) ?(depth = 4) () : Circuit.t =
  assert (depth land (depth - 1) = 0 && depth >= 2);
  let aw = Ty.clog2 depth in
  let cb = Dsl.create_circuit "Fifo" in
  Dsl.module_ cb "Fifo" (fun m ->
      let open Dsl in
      let enq = decoupled_input ~loc:__POS__ m "io_enq" (Ty.UInt width) in
      let deq = decoupled_output ~loc:__POS__ m "io_deq" (Ty.UInt width) in
      let count_out = output ~loc:__POS__ m "io_count" (Ty.UInt (aw + 1)) in
      let ram =
        mem ~loc:__POS__ m "ram" (Ty.UInt width) ~depth ~readers:[ "r" ] ~writers:[ "w" ]
      in
      let head = reg_init ~loc:__POS__ m "head" (lit aw 0) in
      let tail = reg_init ~loc:__POS__ m "tail" (lit aw 0) in
      let maybe_full = reg_init ~loc:__POS__ m "maybe_full" false_ in
      let empty = node m "empty" ((head ==: tail) &: not_s maybe_full) in
      let full = node m "full" ((head ==: tail) &: maybe_full) in
      connect m enq.ready (not_s full);
      connect m deq.valid (not_s empty);
      connect m deq.bits (mem_read ram "r" head);
      let do_enq = node m "do_enq" (fire enq) in
      let do_deq = node m "do_deq" (fire deq) in
      when_ ~loc:__POS__ m do_enq (fun () ->
          mem_write ram "w" ~addr:tail ~data:enq.bits;
          connect m tail (tail +: lit aw 1));
      when_ ~loc:__POS__ m do_deq (fun () -> connect m head (head +: lit aw 1));
      when_ ~loc:__POS__ m (do_enq <>: do_deq) (fun () -> connect m maybe_full do_enq);
      let count =
        (* pointer difference modulo depth, widened for the full case *)
        mux_s full
          (lit (aw + 1) depth)
          (resize (bits_s (tail -: head) ~hi:(aw - 1) ~lo:0) (aw + 1))
      in
      connect m count_out count);
  Dsl.finalize cb
