(** A round-robin arbiter over N decoupled requesters. *)

val circuit : ?ports:int -> ?width:int -> unit -> Sic_ir.Circuit.t
(** [ports] must be a power of two >= 2. Ports: [io_in<i>] (decoupled
    in), [io_out] (decoupled out, granted payload), [io_chosen]. *)
