(** A spiking neuromorphic processor in the spirit of NeuroProc (Table 2):
    a fully parallel bank of leaky integrate-and-fire neurons, one LIF
    update unit per neuron, elaborated by a generator loop — so the number
    of branches (and thus line cover points) scales with the neuron count,
    like the original generator. Long-running and activity-sparse. *)

open Sic_ir

(** [circuit ~neurons ()]: input spikes arrive as a bit vector, output
    spikes leave as a bit vector ([out_spikes] holds last cycle's
    firings). *)
let circuit ?(neurons = 8) ?(threshold = 200) ?(leak = 1) ?(weight = 24) () : Circuit.t =
  let cb = Dsl.create_circuit "NeuroProc" in
  Dsl.module_ cb "NeuroProc" (fun m ->
      let open Dsl in
      let in_spikes = input ~loc:__POS__ m "in_spikes" (Ty.UInt neurons) in
      let enable = input ~loc:__POS__ m "enable" (Ty.UInt 1) in
      let out_spikes = output ~loc:__POS__ m "out_spikes" (Ty.UInt neurons) in
      let spiked_any = output ~loc:__POS__ m "spiked_any" (Ty.UInt 1) in
      let fires =
        List.init neurons (fun i ->
            let pot = reg_init ~loc:__POS__ m (Printf.sprintf "pot_%d" i) (lit 10 0) in
            let fired = reg_init ~loc:__POS__ m (Printf.sprintf "fired_%d" i) false_ in
            connect m fired false_;
            when_ ~loc:__POS__ m enable (fun () ->
                let integrated = wire ~loc:__POS__ m (Printf.sprintf "int_%d" i) (Ty.UInt 11) in
                connect m integrated (resize pot 11);
                when_ ~loc:__POS__ m (bit_s in_spikes i) (fun () ->
                    connect m integrated (pot +: lit 10 weight));
                let leaked = wire ~loc:__POS__ m (Printf.sprintf "leak_%d" i) (Ty.UInt 11) in
                when_else ~loc:__POS__ m
                  (integrated >: lit 11 leak)
                  (fun () -> connect m leaked (integrated -: lit 11 leak))
                  (fun () -> connect m leaked (lit 11 0));
                when_else ~loc:__POS__ m
                  (leaked >: lit 11 threshold)
                  (fun () ->
                    connect m pot (lit 10 0);
                    connect m fired true_)
                  (fun () -> connect m pot (resize leaked 10)));
            fired)
      in
      let spikes_vec =
        List.fold_left
          (fun acc f -> cat_s f acc)
          (List.hd fires)
          (List.tl fires)
      in
      connect m out_spikes spikes_vec;
      connect m spiked_any (orr_s spikes_vec));
  Dsl.finalize cb
