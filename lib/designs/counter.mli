(** A bounded counter with enable and wrap — the quickstart design. *)

val circuit : ?width:int -> ?limit:int -> unit -> Sic_ir.Circuit.t
(** Ports: [en] in, [value] out, [tick] out (pulses on wrap). *)
