(** An I2C master peripheral — the fuzzing target of §5.4 (Figure 11).

    A command word (7-bit address, R/W flag, data byte) arrives over a
    decoupled interface; the controller serialises it onto SCL/SDA through
    a deep FSM (start condition, address bits, ack window, data bits,
    stop), making it a good coverage-feedback benchmark: most branches are
    only reachable through long, specific input sequences. *)

open Sic_ir

let enum_name = "I2cState"

let circuit ?(div = 2) () : Circuit.t =
  let cb = Dsl.create_circuit "I2c" in
  let st =
    Dsl.enum cb enum_name
      [ "Idle"; "Start"; "AddrBit"; "AddrAck"; "DataBit"; "DataAck"; "Stop" ]
  in
  let divw = Ty.clog2 (max 2 div) in
  Dsl.module_ cb "I2c" (fun m ->
      let open Dsl in
      (* command: [15:9] address, [8] read flag, [7:0] write data *)
      let cmd = decoupled_input ~loc:__POS__ m "io_cmd" (Ty.UInt 16) in
      let resp = decoupled_output ~loc:__POS__ m "io_resp" (Ty.UInt 8) in
      let sda_in = input ~loc:__POS__ m "sda_in" (Ty.UInt 1) in
      let scl = output ~loc:__POS__ m "scl" (Ty.UInt 1) in
      let sda_out = output ~loc:__POS__ m "sda_out" (Ty.UInt 1) in
      let busy_out = output ~loc:__POS__ m "busy" (Ty.UInt 1) in
      let nack = output ~loc:__POS__ m "nack_seen" (Ty.UInt 1) in
      let state = reg_enum ~loc:__POS__ m "state" st "Idle" in
      let addr = reg_ ~loc:__POS__ m "addr" (Ty.UInt 8) in
      let data = reg_ ~loc:__POS__ m "data" (Ty.UInt 8) in
      let is_read = reg_init ~loc:__POS__ m "is_read" false_ in
      let bit_count = reg_init ~loc:__POS__ m "bit_count" (lit 3 0) in
      let nack_r = reg_init ~loc:__POS__ m "nack_r" false_ in
      let resp_valid = reg_init ~loc:__POS__ m "resp_valid" false_ in
      let tick_r = reg_init ~loc:__POS__ m "tick_count" (lit divw 0) in
      let tick = node m "tick" (tick_r ==: lit divw (div - 1)) in
      connect m tick_r (mux_s tick (lit divw 0) (tick_r +: lit divw 1));
      let scl_phase = reg_init ~loc:__POS__ m "scl_phase" false_ in
      when_ ~loc:__POS__ m tick (fun () -> connect m scl_phase (not_s scl_phase));
      connect m scl (mux_s (is st "Idle" state) true_ scl_phase);
      connect m sda_out true_;
      connect m busy_out (not_s (is st "Idle" state));
      connect m nack nack_r;
      connect m cmd.ready (is st "Idle" state);
      connect m resp.valid resp_valid;
      connect m resp.bits data;
      when_ ~loc:__POS__ m (fire resp) (fun () -> connect m resp_valid false_);
      let rising = node m "rising" (tick &: not_s scl_phase) in
      let falling = node m "falling" (tick &: scl_phase) in
      switch ~loc:__POS__ m state
        [
          ( enum_value st "Idle",
            fun () ->
              when_ ~loc:__POS__ m (fire cmd) (fun () ->
                  connect m addr (cat_s (bits_s cmd.bits ~hi:15 ~lo:9) (bits_s cmd.bits ~hi:8 ~lo:8));
                  connect m is_read (bits_s cmd.bits ~hi:8 ~lo:8);
                  connect m data (bits_s cmd.bits ~hi:7 ~lo:0);
                  connect m nack_r false_;
                  connect m state (enum_value st "Start")) );
          ( enum_value st "Start",
            fun () ->
              (* start condition: SDA falls while SCL high *)
              connect m sda_out false_;
              when_ ~loc:__POS__ m falling (fun () ->
                  connect m bit_count (lit 3 7);
                  connect m state (enum_value st "AddrBit")) );
          ( enum_value st "AddrBit",
            fun () ->
              connect m sda_out (dshr_s addr (resize bit_count 3));
              when_ ~loc:__POS__ m falling (fun () ->
                  when_else ~loc:__POS__ m
                    (bit_count ==: lit 3 0)
                    (fun () -> connect m state (enum_value st "AddrAck"))
                    (fun () -> connect m bit_count (bit_count -: lit 3 1))) );
          ( enum_value st "AddrAck",
            fun () ->
              when_ ~loc:__POS__ m rising (fun () ->
                  when_ ~loc:__POS__ m sda_in (fun () -> connect m nack_r true_));
              when_ ~loc:__POS__ m falling (fun () ->
                  connect m bit_count (lit 3 7);
                  when_else ~loc:__POS__ m nack_r
                    (fun () -> connect m state (enum_value st "Stop"))
                    (fun () -> connect m state (enum_value st "DataBit"))) );
          ( enum_value st "DataBit",
            fun () ->
              when_else ~loc:__POS__ m is_read
                (fun () ->
                  (* sample the bus into the data register *)
                  when_ ~loc:__POS__ m rising (fun () ->
                      connect m data (cat_s (bits_s data ~hi:6 ~lo:0) sda_in)))
                (fun () -> connect m sda_out (dshr_s data (resize bit_count 3)));
              when_ ~loc:__POS__ m falling (fun () ->
                  when_else ~loc:__POS__ m
                    (bit_count ==: lit 3 0)
                    (fun () -> connect m state (enum_value st "DataAck"))
                    (fun () -> connect m bit_count (bit_count -: lit 3 1))) );
          ( enum_value st "DataAck",
            fun () ->
              connect m sda_out (not_s is_read);
              when_ ~loc:__POS__ m rising (fun () ->
                  when_ ~loc:__POS__ m (sda_in &: not_s is_read) (fun () ->
                      connect m nack_r true_));
              when_ ~loc:__POS__ m falling (fun () ->
                  connect m state (enum_value st "Stop")) );
          ( enum_value st "Stop",
            fun () ->
              connect m sda_out false_;
              when_ ~loc:__POS__ m rising (fun () ->
                  when_ ~loc:__POS__ m is_read (fun () -> connect m resp_valid true_);
                  connect m state (enum_value st "Idle")) );
        ]);
  Dsl.finalize cb
