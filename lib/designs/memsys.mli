(** A two-level memory system: direct-mapped cache (tags + valid bits,
    write-through) over a fixed-latency DRAM model — the composition style
    FireSim builds simulations from (§3.3). *)

val dram_enum : string
val cache2_enum : string

type params = {
  index_bits : int;  (** cache lines = 2^index_bits *)
  tag_bits : int;
  dram_latency : int;
}

val default_params : params

val define_dram : params -> Sic_ir.Dsl.enum -> Sic_ir.Dsl.circuit_builder -> unit
val define_cache2 : params -> Sic_ir.Dsl.enum -> Sic_ir.Dsl.circuit_builder -> unit

val circuit : ?params:params -> unit -> Sic_ir.Circuit.t
(** Ports: [io_req] (decoupled: [addr_bits-1:0] address, next bit rw,
    then 32-bit write data), [io_resp] (decoupled read data), and the
    [hit_count]/[miss_count] performance counters. *)
