(** A matrix-multiply accelerator: an n x n MAC grid from a generator
    loop, decoupled load/drain channels, an enum-FSM sequencer. *)

val enum_name : string

val circuit : ?n:int -> ?width:int -> unit -> Sic_ir.Circuit.t
(** Stream A then B row-major over [io_load] (2n² transfers), read C
    row-major from [io_result] (n² transfers). *)
