(** The persistent coverage database.

    The paper's §5.3 observation — every backend reports the same
    [cover point -> count] map, so coverage "can be merged across backends
    trivially" — only pays off at scale if the runs are kept somewhere: a
    campaign produces hundreds of counts maps from different backends,
    workloads and seeds, and the interesting questions (what is covered
    overall? which runs matter? what is still worth instrumenting on the
    FPGA?) are questions about the {e collection}.

    A database is a plain directory:

    - [manifest.ndjson] — one JSON object per line ({!Sic_obs.Json}
      syntax): a versioned header record, then one [run] record per
      completed or failed job, appended in arrival order;
    - [<run-id>.cnt] — the counts map of each successful run, in the
      {!Sic_coverage.Counts} v1 interchange format;
    - [aggregate.cnt] — a cached pointwise-sum of every successful run,
      kept up to date incrementally on {!add} (saturating addition is
      associative and commutative, so incremental maintenance equals a
      full re-merge).

    Everything is human-readable text; [rm aggregate.cnt] simply forces a
    recompute. *)

module Counts = Sic_coverage.Counts
module Timeline = Sic_coverage.Timeline
module Json = Sic_obs.Json
module Obs = Sic_obs.Obs

exception Db_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Db_error m)) fmt

type status = Run_ok | Run_failed of string

type run = {
  id : string;
  design : string;
  circuit_hash : string;  (** digest of the instrumented circuit, or "-" *)
  backend : string;
  workload : string;
  seed : int;
  cycles : int;  (** simulated cycles / fuzz execs / BMC bound, per workload *)
  wave : int;
  wall_us : float;
  status : status;
  points_total : int;
  points_covered : int;
}

type exclusion = {
  ex_name : string;  (** the cover point *)
  ex_reason : string;  (** e.g. "unreachable within bound 10" *)
  ex_design : string;
  ex_wave : int;  (** the closure wave that proved it *)
}

type t = {
  dir : string;
  mutable runs_rev : run list;  (** newest first; manifest order is the reverse *)
  mutable exclusions_rev : exclusion list;  (** newest first, like [runs_rev] *)
}

let version = 1

let exclusions_version = 1

let manifest_path dir = Filename.concat dir "manifest.ndjson"

let exclusions_path dir = Filename.concat dir "exclusions.ndjson"

let aggregate_path dir = Filename.concat dir "aggregate.cnt"

let counts_file run = run.id ^ ".cnt"

let timeline_file run = run.id ^ ".tl"

let dir t = t.dir

let runs t = List.rev t.runs_rev

(* ------------------------------------------------------------------ *)
(* The advisory lock                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Cross-process mutual exclusion for manifest/aggregate updates. The
    lock is a [lock] file in the database directory created with
    [O_CREAT | O_EXCL] (atomic on every POSIX filesystem) and holding the
    owner's pid; a lock whose owner is no longer alive is stale and taken
    over, so a killed campaign never wedges the database. Reentrant
    within a process (nested {!with_lock} calls on the same directory are
    free), but {e not} thread-safe on its own — a threaded writer (the
    coverage server) must serialize its own writers first. *)
module Lock = struct
  let lock_path dir = Filename.concat dir "lock"

  (* directories this process already holds; makes with_lock reentrant *)
  let held : (string, unit) Hashtbl.t = Hashtbl.create 4

  let owner_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error _ -> true (* EPERM etc.: someone owns it *)

  (* one attempt; on a stale lock, unlink it and report failure so the
     retry loop races for the fresh O_EXCL create like everyone else *)
  let try_acquire path =
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
    | fd ->
        let pid = string_of_int (Unix.getpid ()) ^ "\n" in
        let b = Bytes.of_string pid in
        ignore (Unix.write fd b 0 (Bytes.length b));
        Unix.close fd;
        true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        (match int_of_string_opt (String.trim (try read_file path with _ -> "")) with
        | Some pid when not (owner_alive pid) -> ( try Unix.unlink path with _ -> ())
        | Some _ | None -> ());
        false

  let with_lock ?(timeout_s = 10.) dir f =
    if Hashtbl.mem held dir then f ()
    else begin
      let path = lock_path dir in
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec acquire () =
        if try_acquire path then ()
        else if Unix.gettimeofday () > deadline then
          error "timed out after %.0fs waiting for %s (held by pid %s)" timeout_s path
            (String.trim (try read_file path with _ -> "?"))
        else begin
          Unix.sleepf 0.01;
          acquire ()
        end
      in
      acquire ();
      Hashtbl.replace held dir ();
      Fun.protect
        ~finally:(fun () ->
          Hashtbl.remove held dir;
          try Unix.unlink path with _ -> ())
        f
    end
end

let find t id = List.find_opt (fun r -> r.id = id) t.runs_rev

let ok_runs t = List.filter (fun r -> r.status = Run_ok) (runs t)

(* ------------------------------------------------------------------ *)
(* Manifest encoding                                                    *)
(* ------------------------------------------------------------------ *)

let json_of_run (r : run) : Json.t =
  Json.Obj
    ([
       ("type", Json.String "run");
       ("id", Json.String r.id);
       ("design", Json.String r.design);
       ("circuit_hash", Json.String r.circuit_hash);
       ("backend", Json.String r.backend);
       ("workload", Json.String r.workload);
       ("seed", Json.Int r.seed);
       ("cycles", Json.Int r.cycles);
       ("wave", Json.Int r.wave);
       ("wall_us", Json.Float r.wall_us);
       ("points_total", Json.Int r.points_total);
       ("points_covered", Json.Int r.points_covered);
     ]
    @
    match r.status with
    | Run_ok -> [ ("status", Json.String "ok") ]
    | Run_failed why -> [ ("status", Json.String "failed"); ("error", Json.String why) ])

let run_of_json lineno (j : Json.t) : run =
  let str k =
    match Json.string_member k j with
    | Some s -> s
    | None -> error "manifest line %d: missing field %s" lineno k
  in
  let int k =
    match Json.int_member k j with
    | Some i -> i
    | None -> error "manifest line %d: missing field %s" lineno k
  in
  let status =
    match str "status" with
    | "ok" -> Run_ok
    | "failed" -> Run_failed (Option.value ~default:"unknown" (Json.string_member "error" j))
    | s -> error "manifest line %d: unknown status %S" lineno s
  in
  {
    id = str "id";
    design = str "design";
    circuit_hash = str "circuit_hash";
    backend = str "backend";
    workload = str "workload";
    seed = int "seed";
    cycles = int "cycles";
    wave = int "wave";
    wall_us = Option.value ~default:0. (Json.float_member "wall_us" j);
    status;
    points_total = int "points_total";
    points_covered = int "points_covered";
  }

let header_json () =
  Json.Obj
    [
      ("type", Json.String "meta");
      ("format", Json.String "sic-db");
      ("version", Json.Int version);
    ]

let append_to path (j : Json.t) =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string j);
      output_char oc '\n')

let append_line dir (j : Json.t) = append_to (manifest_path dir) j

(* ------------------------------------------------------------------ *)
(* The exclusion artifact                                               *)
(* ------------------------------------------------------------------ *)

(* [exclusions.ndjson]: the same shape as the manifest — a versioned meta
   header, then one record per point formally proven unreachable (the
   closure loop's UNSAT-within-bound verdicts). A separate artifact
   rather than manifest records because it describes the *design*, not a
   run: deleting runs or re-running a campaign leaves it valid, and
   report/rank/HTML consult it to stop counting dead points as coverage
   debt. *)

let exclusions_header_json () =
  Json.Obj
    [
      ("type", Json.String "meta");
      ("format", Json.String "sic-exclusions");
      ("version", Json.Int exclusions_version);
    ]

let json_of_exclusion (e : exclusion) : Json.t =
  Json.Obj
    [
      ("type", Json.String "exclusion");
      ("name", Json.String e.ex_name);
      ("reason", Json.String e.ex_reason);
      ("design", Json.String e.ex_design);
      ("wave", Json.Int e.ex_wave);
    ]

let exclusion_of_json lineno (j : Json.t) : exclusion =
  let str k =
    match Json.string_member k j with
    | Some s -> s
    | None -> error "exclusions line %d: missing field %s" lineno k
  in
  {
    ex_name = str "name";
    ex_reason = str "reason";
    ex_design = str "design";
    ex_wave = Option.value ~default:0 (Json.int_member "wave" j);
  }

let load_exclusions dir : exclusion list =
  let path = exclusions_path dir in
  if not (Sys.file_exists path) then []
  else
    let lines =
      read_file path |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    let parse lineno l =
      try Json.parse l
      with Json.Parse_error m -> error "exclusions line %d: %s" lineno m
    in
    match lines with
    | [] -> []
    | header :: rest ->
        let h = parse 1 header in
        (match (Json.string_member "format" h, Json.int_member "version" h) with
        | Some "sic-exclusions", Some v when v = exclusions_version -> ()
        | Some "sic-exclusions", Some v ->
            error "%s: exclusions version %d, this build reads version %d" dir v
              exclusions_version
        | _ -> error "%s: exclusions file does not start with a sic-exclusions meta record" dir);
        List.mapi (fun i l -> exclusion_of_json (i + 2) (parse (i + 2) l)) rest

(* ------------------------------------------------------------------ *)
(* Open / create                                                        *)
(* ------------------------------------------------------------------ *)

let init dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then error "%s exists and is not a directory" dir;
  if Sys.file_exists (manifest_path dir) then error "%s is already a coverage database" dir;
  (* stale artifacts from a hand-deleted manifest must not leak into the
     fresh database *)
  if Sys.file_exists (aggregate_path dir) then Sys.remove (aggregate_path dir);
  if Sys.file_exists (exclusions_path dir) then Sys.remove (exclusions_path dir);
  append_line dir (header_json ());
  { dir; runs_rev = []; exclusions_rev = [] }

let load dir =
  if not (Sys.file_exists (manifest_path dir)) then
    error "%s is not a coverage database (no manifest.ndjson); run `sic db init` first" dir;
  let lines =
    read_file (manifest_path dir)
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parse lineno l =
    try Json.parse l
    with Json.Parse_error m -> error "manifest line %d: %s" lineno m
  in
  match lines with
  | [] -> error "%s: empty manifest" dir
  | header :: rest ->
      let h = parse 1 header in
      (match (Json.string_member "format" h, Json.int_member "version" h) with
      | Some "sic-db", Some v when v = version -> ()
      | Some "sic-db", Some v ->
          error "%s: database version %d, this build reads version %d" dir v version
      | _ -> error "%s: manifest does not start with a sic-db meta record" dir);
      let runs =
        List.mapi (fun i l -> run_of_json (i + 2) (parse (i + 2) l)) rest
      in
      { dir; runs_rev = List.rev runs; exclusions_rev = List.rev (load_exclusions dir) }

let open_or_init dir = if Sys.file_exists (manifest_path dir) then load dir else init dir

(* ------------------------------------------------------------------ *)
(* Counts and the aggregate cache                                       *)
(* ------------------------------------------------------------------ *)

let load_counts t (run : run) : Counts.t =
  match run.status with
  | Run_failed _ -> error "run %s failed; it has no counts" run.id
  | Run_ok -> Counts.load (Filename.concat t.dir (counts_file run))

(** The run's coverage-convergence timeline, when one was recorded
    (campaigns with [timeline_every > 0]); failed runs and runs from
    timeline-less producers have none. *)
let load_timeline t (run : run) : Timeline.t option =
  match run.status with
  | Run_failed _ -> None
  | Run_ok ->
      let path = Filename.concat t.dir (timeline_file run) in
      if Sys.file_exists path then Some (Timeline.load path) else None

let recompute_aggregate t : Counts.t =
  Obs.span "db.aggregate.recompute" @@ fun () ->
  Lock.with_lock t.dir @@ fun () ->
  let agg = Counts.merge (List.map (load_counts t) (ok_runs t)) in
  Counts.save (aggregate_path t.dir) agg;
  agg

let aggregate t : Counts.t =
  if Sys.file_exists (aggregate_path t.dir) then Counts.load (aggregate_path t.dir)
  else recompute_aggregate t

(** The §5.3 export: the merged counts, ready to feed
    {!Sic_coverage.Removal.remove_covered} so the next (more expensive)
    instrumentation only carries still-uncovered points. *)
let removal_counts = aggregate

(** The idempotent merge: pointwise maximum over every successful run.
    Unlike the cached sum {!aggregate} this is safe under at-least-once
    delivery (a network producer that retries a push reports the same run
    twice), which is why the coverage server's [/report] serves this view.
    Never cached — callers that need it hot (the server) key their own
    cache on {!manifest_stamp}. *)
let union_counts t : Counts.t =
  Counts.union_max (List.map (load_counts t) (ok_runs t))

(** A cheap, monotonically increasing version of the database as it is on
    disk {e right now}: the manifest's byte length. The manifest is
    append-only, so any add — by this process or any other — grows it;
    equal stamps imply an identical run set. This is the coverage
    server's ETag key. *)
let manifest_stamp t : int =
  match Unix.stat (manifest_path t.dir) with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

let next_id t = Printf.sprintf "r%04d" (List.length t.runs_rev + 1)

let add t ~design ?(circuit_hash = "-") ~backend ~workload ~seed ~cycles ?(wave = 0)
    ?(wall_us = 0.) ?timeline (outcome : (Counts.t, string) result) : run =
  Obs.span "db.add" @@ fun () ->
  Lock.with_lock t.dir @@ fun () ->
  let id = next_id t in
  let status, points_total, points_covered =
    match outcome with
    | Ok counts -> (Run_ok, Counts.total_points counts, Counts.covered_points counts)
    | Error why -> (Run_failed why, 0, 0)
  in
  let run =
    {
      id;
      design;
      circuit_hash;
      backend;
      workload;
      seed;
      cycles;
      wave;
      wall_us;
      status;
      points_total;
      points_covered;
    }
  in
  (match outcome with
  | Ok counts ->
      Counts.save (Filename.concat t.dir (counts_file run)) counts;
      (match timeline with
      | Some tl -> Timeline.save (Filename.concat t.dir (timeline_file run)) tl
      | None -> ());
      (* maintain the cache incrementally: sum-merge is associative *)
      let agg =
        if t.runs_rev = [] then counts
        else Counts.merge [ aggregate t; counts ]
      in
      Counts.save (aggregate_path t.dir) agg
  | Error _ -> Obs.count "db.failed_runs");
  append_line t.dir (json_of_run run);
  t.runs_rev <- run :: t.runs_rev;
  run

(* ------------------------------------------------------------------ *)
(* Exclusions                                                           *)
(* ------------------------------------------------------------------ *)

let exclusions t = List.rev t.exclusions_rev

let excluded_names t : string list =
  List.sort_uniq String.compare (List.map (fun e -> e.ex_name) t.exclusions_rev)

(** Append proven-unreachable points to the exclusion artifact.
    Idempotent per point: a name already excluded is skipped, so replayed
    closure waves never duplicate records. *)
let add_exclusions t (exs : exclusion list) : unit =
  Obs.span "db.add_exclusions" @@ fun () ->
  Lock.with_lock t.dir @@ fun () ->
  let already = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace already e.ex_name ()) t.exclusions_rev;
  let fresh =
    List.filter
      (fun e ->
        if Hashtbl.mem already e.ex_name then false
        else begin
          Hashtbl.replace already e.ex_name ();
          true
        end)
      exs
  in
  if fresh <> [] then begin
    let path = exclusions_path t.dir in
    if not (Sys.file_exists path) then append_to path (exclusions_header_json ());
    List.iter
      (fun e ->
        append_to path (json_of_exclusion e);
        t.exclusions_rev <- e :: t.exclusions_rev)
      fresh
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

let get_run t id =
  match find t id with Some r -> r | None -> error "no run %s in %s" id t.dir

let diff t ~before ~after =
  Counts.diff ~before:(load_counts t (get_run t before)) ~after:(load_counts t (get_run t after))

(** Greedy set cover: the classic ln(n)-approximate minimal subset of runs
    whose union reaches every point the whole database covers (at
    [threshold]). This is the paper's "remove already-covered points"
    generalized to test-suite minimization: keep these runs, retire the
    rest. Deterministic: ties break toward the earlier run id. *)
let rank ?(threshold = 1) t : run list =
  Obs.span "db.rank" @@ fun () ->
  let with_counts =
    List.map (fun r -> (r, load_counts t r)) (ok_runs t)
  in
  let excluded = excluded_names t in
  let target =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, c) -> Counts.covered ~threshold c) with_counts)
    |> List.filter (fun n -> not (List.mem n excluded))
  in
  let uncovered = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace uncovered p ()) target;
  let gain (_, counts) =
    List.fold_left
      (fun acc p -> if Hashtbl.mem uncovered p then acc + 1 else acc)
      0
      (Counts.covered ~threshold counts)
  in
  let rec go picked remaining =
    if Hashtbl.length uncovered = 0 || remaining = [] then List.rev picked
    else
      let best, best_gain =
        List.fold_left
          (fun (best, best_gain) cand ->
            let g = gain cand in
            if g > best_gain then (Some cand, g) else (best, best_gain))
          (None, 0) remaining
      in
      match best with
      | None | Some _ when best_gain = 0 -> List.rev picked
      | None -> List.rev picked
      | Some ((r, counts) as chosen) ->
          List.iter (fun p -> Hashtbl.remove uncovered p) (Counts.covered ~threshold counts);
          go (r :: picked) (List.filter (fun c -> c != chosen) remaining)
  in
  go [] with_counts

(* ------------------------------------------------------------------ *)
(* Rendering (the CLI's output)                                         *)
(* ------------------------------------------------------------------ *)

let render_run_line (r : run) =
  Printf.sprintf "%-6s %-12s %-9s %-8s w%-2d seed=%-6d n=%-8d %s" r.id r.design r.backend
    r.workload r.wave r.seed r.cycles
    (match r.status with
    | Run_ok -> Printf.sprintf "%d/%d covered" r.points_covered r.points_total
    | Run_failed why -> "FAILED: " ^ why)

let render_list t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "coverage database %s: %d runs (%d ok, %d failed)\n" t.dir
       (List.length t.runs_rev)
       (List.length (ok_runs t))
       (List.length t.runs_rev - List.length (ok_runs t)));
  List.iter (fun r -> Buffer.add_string buf (render_run_line r ^ "\n")) (runs t);
  Buffer.contents buf

let render_report t =
  let buf = Buffer.create 512 in
  let agg = aggregate t in
  (* formally excluded points are off the books entirely: the denominator,
     per-backend tallies and the uncovered list all range over the
     non-excluded points only (with no exclusions this is byte-identical
     to the exclusion-free report) *)
  let excluded = excluded_names t in
  let is_excluded n = List.mem n excluded in
  let live = List.filter (fun n -> not (is_excluded n)) (Counts.names agg) in
  let total = List.length live in
  let cov = List.length (List.filter (fun n -> Counts.get agg n > 0) live) in
  Buffer.add_string buf
    (Printf.sprintf "runs        : %d ok, %d failed\n"
       (List.length (ok_runs t))
       (List.length t.runs_rev - List.length (ok_runs t)));
  Buffer.add_string buf
    (Printf.sprintf "cover points: %d/%d covered (%.1f%%)\n" cov total
       (if total = 0 then 100. else 100. *. float_of_int cov /. float_of_int total));
  if excluded <> [] then
    Buffer.add_string buf
      (Printf.sprintf "excluded    : %d points proven unreachable\n" (List.length excluded));
  (* contribution per backend: points each backend covered on its own *)
  let backends =
    List.sort_uniq String.compare (List.map (fun r -> r.backend) (ok_runs t))
  in
  List.iter
    (fun backend ->
      let c =
        Counts.merge
          (List.filter_map
             (fun r -> if r.backend = backend then Some (load_counts t r) else None)
             (ok_runs t))
      in
      let bcov =
        List.length (List.filter (fun n -> (not (is_excluded n)) && Counts.get c n > 0) (Counts.names c))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-9s : %d/%d points, %d runs\n" backend bcov total
           (List.length (List.filter (fun r -> r.backend = backend) (ok_runs t)))))
    backends;
  let uncovered = List.filter (fun n -> Counts.get agg n = 0) live in
  if uncovered <> [] then begin
    Buffer.add_string buf "still uncovered:\n";
    List.iter (fun n -> Buffer.add_string buf ("  " ^ n ^ "\n")) uncovered
  end;
  if excluded <> [] then begin
    Buffer.add_string buf "excluded (proven unreachable):\n";
    List.iter
      (fun (e : exclusion) ->
        Buffer.add_string buf (Printf.sprintf "  %s  (%s)\n" e.ex_name e.ex_reason))
      (exclusions t)
  end;
  Buffer.contents buf

(** The textual convergence report ([sic db report --timeline]): one
    sparkline per run that recorded a timeline, plus a "which backend
    saturates first" comparison when several backends did. *)
let render_timelines t =
  let with_tl =
    List.filter_map
      (fun r -> Option.map (fun tl -> (r, tl)) (load_timeline t r))
      (ok_runs t)
  in
  if with_tl = [] then
    "no timelines recorded (re-run the campaign with --timeline-every > 0)\n"
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "coverage convergence (work -> points covered):\n";
    List.iter
      (fun ((r : run), (tl : Timeline.t)) ->
        let sat =
          match Timeline.saturation_at tl with
          | Some at -> Printf.sprintf ", ~saturated at n=%d" at
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-6s %-12s %-9s [%s] %d/%d pts in n=%d%s\n" r.id r.design
             r.backend (Timeline.sparkline tl) (Timeline.final_covered tl) tl.Timeline.total
             (Timeline.last_at tl) sat))
      with_tl;
    let backends =
      List.sort_uniq String.compare (List.map (fun ((r : run), _) -> r.backend) with_tl)
    in
    if List.length backends > 1 then begin
      Buffer.add_string buf "earliest saturation per backend:\n";
      List.iter
        (fun backend ->
          let sats =
            List.filter_map
              (fun ((r : run), tl) ->
                if r.backend = backend then Timeline.saturation_at tl else None)
              with_tl
          in
          match sats with
          | [] -> ()
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  %-9s : n=%d\n" backend
                   (List.fold_left min max_int sats)))
        backends
    end;
    Buffer.contents buf
  end

let render_rank ?threshold t =
  let picked = rank ?threshold t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d of %d runs suffice for full merged coverage:\n" (List.length picked)
       (List.length (ok_runs t)));
  let covered = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let c = load_counts t r in
      let fresh =
        List.filter (fun p -> not (Hashtbl.mem covered p)) (Counts.covered ?threshold c)
      in
      List.iter (fun p -> Hashtbl.replace covered p ()) fresh;
      Buffer.add_string buf
        (Printf.sprintf "  %s  +%-4d points  (%s %s seed=%d)\n" r.id (List.length fresh)
           r.design r.backend r.seed))
    picked;
  Buffer.contents buf

(** The machine-readable rank view ([sic db rank --json]) — what the
    closure loop and external tooling consume: the aggregate's coverage
    state split into covered / uncovered / excluded (exclusions are off
    the books, as in {!render_report}), plus the greedy set-cover pick
    with each run's marginal gain. *)
let rank_json ?(threshold = 1) t : Json.t =
  let agg = aggregate t in
  let excluded = excluded_names t in
  let is_excluded n = List.mem n excluded in
  let live = List.filter (fun n -> not (is_excluded n)) (Counts.names agg) in
  let uncovered = List.filter (fun n -> Counts.get agg n < threshold) live in
  let covered_n = List.length live - List.length uncovered in
  let picked = rank ~threshold t in
  let seen = Hashtbl.create 256 in
  let picked_json =
    List.map
      (fun r ->
        let c = load_counts t r in
        let fresh =
          List.filter (fun p -> not (Hashtbl.mem seen p)) (Counts.covered ~threshold c)
        in
        List.iter (fun p -> Hashtbl.replace seen p ()) fresh;
        Json.Obj
          [
            ("id", Json.String r.id);
            ("design", Json.String r.design);
            ("backend", Json.String r.backend);
            ("seed", Json.Int r.seed);
            ("gain", Json.Int (List.length fresh));
          ])
      picked
  in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ("threshold", Json.Int threshold);
      ("points_total", Json.Int (List.length live));
      ("points_covered", Json.Int covered_n);
      ("uncovered", strings uncovered);
      ("excluded", strings excluded);
      ("picked", Json.List picked_json);
    ]
