(** Persistent coverage database: a directory of runs.

    Layout: [manifest.ndjson] (a versioned meta record, then one JSON
    record per run, append-only), one [<id>.cnt] counts file per
    successful run ({!Sic_coverage.Counts} v1 format), and a cached
    [aggregate.cnt] maintained incrementally on {!add}. All text, all
    diffable; deleting [aggregate.cnt] just forces a recompute.

    This is the substrate of the §5.3 flow at campaign scale: every
    backend's runs land here in the same format, merging is the trivial
    pointwise sum, and {!removal_counts}/{!rank} answer "what is still
    worth instrumenting" and "which runs are worth keeping". *)

module Counts = Sic_coverage.Counts

exception Db_error of string

type status = Run_ok | Run_failed of string

type run = {
  id : string;  (** ["r0001"], assigned by {!add} in arrival order *)
  design : string;
  circuit_hash : string;  (** digest of the instrumented circuit, or ["-"] *)
  backend : string;  (** [interp] / [compiled] / [essent] / [fpga] / [fuzz] / [bmc] / ... *)
  workload : string;  (** [random] / [fuzz] / [bmc] / free-form *)
  seed : int;
  cycles : int;  (** simulated cycles, fuzz execs or BMC bound, per workload *)
  wave : int;  (** campaign wave this run belonged to; 0 outside campaigns *)
  wall_us : float;
  status : status;
  points_total : int;
  points_covered : int;
}

type exclusion = {
  ex_name : string;  (** the cover point *)
  ex_reason : string;  (** e.g. ["unreachable within bound 10"] *)
  ex_design : string;
  ex_wave : int;  (** the closure wave that proved it; 0 outside closure *)
}
(** A point formally proven unreachable (the closure loop's
    UNSAT-within-bound verdict), persisted in the versioned
    [exclusions.ndjson] artifact — same shape as the manifest (meta
    header, then one record per point). A design property, not a run
    property: it survives re-running campaigns, and {!render_report} /
    {!rank} / the HTML report stop counting excluded points as coverage
    debt. *)

type t

(** Cross-process mutual exclusion over a database directory, so
    concurrent writers ([sic db add], overlapping campaigns, the coverage
    server) cannot interleave manifest appends or aggregate rewrites. The
    lock is an advisory [lock] file created with [O_CREAT | O_EXCL],
    holding the owner's pid; a lock whose owner is dead is stale and
    taken over. Reentrant within a process (so {!add}, which locks
    internally, composes with an outer [with_lock] around a load-add
    read-modify-write); {b not} thread-safe by itself — a threaded writer
    must additionally serialize its own threads. *)
module Lock : sig
  val with_lock : ?timeout_s:float -> string -> (unit -> 'a) -> 'a
  (** [with_lock dir f] runs [f] holding [dir]'s lock, releasing it even
      if [f] raises. Raises {!Db_error} after [timeout_s] (default 10s)
      of another live process holding it. *)
end

val init : string -> t
(** Create the directory (if needed) and an empty manifest. Raises
    {!Db_error} if one already exists there. *)

val load : string -> t
(** Open an existing database; rejects missing manifests and manifests
    written by an incompatible format version. *)

val open_or_init : string -> t

val dir : t -> string
val runs : t -> run list
(** Manifest (arrival) order. *)

val find : t -> string -> run option
val ok_runs : t -> run list

val add :
  t ->
  design:string ->
  ?circuit_hash:string ->
  backend:string ->
  workload:string ->
  seed:int ->
  cycles:int ->
  ?wave:int ->
  ?wall_us:float ->
  ?timeline:Sic_coverage.Timeline.t ->
  (Counts.t, string) result ->
  run
(** Record one run: write its counts file (on [Ok]), append the manifest
    record, and fold the counts into the cached aggregate. [timeline]
    additionally persists the run's coverage-convergence curve as
    [<id>.tl] ({!Sic_coverage.Timeline} v1 format). [Error why] records a
    failed run — no counts, aggregate untouched — so a crashed worker
    leaves an audit trail instead of a hole. *)

val load_counts : t -> run -> Counts.t

val load_timeline : t -> run -> Sic_coverage.Timeline.t option
(** The run's persisted convergence timeline, if one was recorded. *)

val aggregate : t -> Counts.t
(** The merged counts of every successful run (cached; recomputed when the
    cache file is missing). *)

val union_counts : t -> Counts.t
(** {!Sic_coverage.Counts.union_max} over every successful run — the
    idempotent merge, safe under at-least-once delivery (a retried push
    reporting the same run twice). What the coverage server's [/report]
    serves. Computed fresh on every call. *)

val manifest_stamp : t -> int
(** The on-disk manifest's current byte length — a cheap, monotonically
    increasing database version that changes on every {!add} by any
    process (the manifest is append-only). The coverage server keys its
    ETags and response cache on it. *)

val recompute_aggregate : t -> Counts.t
(** Force a full re-merge and rewrite the cache. *)

val removal_counts : t -> Counts.t
(** The §5.3 export: feed this to {!Sic_coverage.Removal.remove_covered}
    (or [sic scan --db]) so the next, more expensive instrumentation
    carries only still-uncovered points. Currently the aggregate. *)

val diff : t -> before:string -> after:string -> Counts.diff
(** Compare two runs by id. *)

val rank : ?threshold:int -> t -> run list
(** Greedy set cover: an approximately minimal subset of runs whose merged
    coverage (at [threshold], default 1) equals the whole database's —
    test-suite minimization over the run store. Deterministic; runs are
    returned in pick order (largest marginal gain first). Excluded points
    are not part of the target. *)

val rank_json : ?threshold:int -> t -> Sic_obs.Json.t
(** The machine-readable rank view ([sic db rank --json]): threshold,
    non-excluded points total/covered, the uncovered and excluded name
    lists, and the {!rank} pick with per-run marginal [gain]. *)

(** {1 Exclusions} *)

val exclusions : t -> exclusion list
(** Artifact (arrival) order. *)

val excluded_names : t -> string list
(** Sorted, deduplicated. *)

val add_exclusions : t -> exclusion list -> unit
(** Append to [exclusions.ndjson] (creating it, header first, on first
    use) under the database lock. Idempotent per point name: already
    excluded names are skipped, so replayed closure waves never duplicate
    records. *)

val json_of_run : run -> Sic_obs.Json.t
(** The run's manifest record (the coverage server's [/runs] rows). *)

(** {1 Text renderers (the [sic db] subcommands)} *)

val render_run_line : run -> string
val render_list : t -> string
val render_report : t -> string

val render_timelines : t -> string
(** Coverage-convergence sparklines per run plus a per-backend
    earliest-saturation comparison ([sic db report --timeline]). *)

val render_rank : ?threshold:int -> t -> string
