(** Structured telemetry recorder + exporters (see obs.mli). *)

type value = Bool of bool | Int of int | Float of float | Str of string

type event =
  | Span of {
      name : string;
      start_us : float;
      dur_us : float;
      depth : int;
      args : (string * value) list;
    }
  | Gauge of { name : string; ts_us : float; gauge_value : float }
  | Instant of { name : string; ts_us : float; args : (string * value) list }

type lane = { lane_pid : int; lane_label : string; lane_events : event list }

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

let enabled = ref false
let on () = !enabled

let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f
let now_us () = !clock () *. 1e6

external now_ns : unit -> int = "sic_obs_monotonic_ns" [@@noalloc]

let t0_us = ref 0.
let depth = ref 0
let recorded : event list ref = ref [] (* newest first *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 16

(* telemetry imported from other processes, one lane each, newest first *)
let imported : lane list ref = ref []
let lanes () = List.rev !imported

(* timestamp relative to [enable] *)
let ts () = now_us () -. !t0_us

let record e = recorded := e :: !recorded
let events () = List.rev !recorded

let enable () =
  t0_us := now_us ();
  enabled := true

let disable () = enabled := false

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  type t = { mutable values : float array; mutable len : int }

  let create () = { values = Array.make 64 0.; len = 0 }

  let add h v =
    if h.len = Array.length h.values then begin
      let bigger = Array.make (2 * h.len) 0. in
      Array.blit h.values 0 bigger 0 h.len;
      h.values <- bigger
    end;
    h.values.(h.len) <- v;
    h.len <- h.len + 1

  let count h = h.len

  let fold f init h =
    let acc = ref init in
    for i = 0 to h.len - 1 do
      acc := f !acc h.values.(i)
    done;
    !acc

  let mean h = if h.len = 0 then nan else fold ( +. ) 0. h /. float_of_int h.len
  let min_value h = if h.len = 0 then nan else fold Float.min infinity h
  let max_value h = if h.len = 0 then nan else fold Float.max neg_infinity h

  (* nearest-rank percentile over a sorted copy; exact for our scales *)
  let percentile h q =
    if h.len = 0 then nan
    else begin
      let sorted = Array.sub h.values 0 h.len in
      Array.sort Float.compare sorted;
      let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int h.len)) - 1 in
      sorted.(max 0 (min (h.len - 1) rank))
    end
end

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace histograms name h;
      h

let reset () =
  recorded := [];
  imported := [];
  depth := 0;
  Hashtbl.reset counters;
  Hashtbl.reset histograms

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

type span_ctx = { ctx_start_us : float; ctx_depth : int; live : bool }

let span_open () =
  if not !enabled then { ctx_start_us = 0.; ctx_depth = 0; live = false }
  else begin
    let c = { ctx_start_us = ts (); ctx_depth = !depth; live = true } in
    depth := !depth + 1;
    c
  end

let span_close (c : span_ctx) ~name args =
  if c.live then begin
    depth := c.ctx_depth;
    record
      (Span
         {
           name;
           start_us = c.ctx_start_us;
           dur_us = ts () -. c.ctx_start_us;
           depth = c.ctx_depth;
           args;
         })
  end

let span ?(args = []) name f =
  if not !enabled then f ()
  else begin
    let c = span_open () in
    match f () with
    | v ->
        span_close c ~name args;
        v
    | exception e ->
        span_close c ~name (("error", Bool true) :: args);
        raise e
  end

let record_span ~name ~start_us ~dur_us args =
  if !enabled then
    record (Span { name; start_us = start_us -. !t0_us; dur_us; depth = !depth; args })

(* ------------------------------------------------------------------ *)
(* Counters, gauges, instants                                           *)
(* ------------------------------------------------------------------ *)

let count ?(by = 1) name =
  if !enabled then
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace counters name (ref by)

let counter_value name =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let gauge name v = if !enabled then record (Gauge { name; ts_us = ts (); gauge_value = v })

let instant ?(args = []) name =
  if !enabled then record (Instant { name; ts_us = ts (); args })

(* ------------------------------------------------------------------ *)
(* The runtime text sink                                                *)
(* ------------------------------------------------------------------ *)

let sink : (string -> unit) ref = ref print_string

let with_sink s f =
  let saved = !sink in
  sink := s;
  Fun.protect ~finally:(fun () -> sink := saved) f

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let json_of_value (v : value) : Json.t =
  match v with
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s

let json_of_args args = Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)

let json_of_event (e : event) : Json.t =
  match e with
  | Span { name; start_us; dur_us; depth; args } ->
      Json.Obj
        [
          ("type", Json.String "span");
          ("name", Json.String name);
          ("start_us", Json.Float start_us);
          ("dur_us", Json.Float dur_us);
          ("depth", Json.Int depth);
          ("args", json_of_args args);
        ]
  | Gauge { name; ts_us; gauge_value } ->
      Json.Obj
        [
          ("type", Json.String "gauge");
          ("name", Json.String name);
          ("ts_us", Json.Float ts_us);
          ("value", Json.Float gauge_value);
        ]
  | Instant { name; ts_us; args } ->
      Json.Obj
        [
          ("type", Json.String "instant");
          ("name", Json.String name);
          ("ts_us", Json.Float ts_us);
          ("args", json_of_args args);
        ]

(* ------------------------------------------------------------------ *)
(* Cross-process round-trip                                             *)
(* ------------------------------------------------------------------ *)

(* A worker ships its recorded events to the orchestrator as NDJSON: a
   meta line carrying the worker's pid and absolute t0 (so the parent can
   rebase timestamps onto its own t0), then one line per event in the
   [json_of_event] schema, then counter summaries to absorb. *)

let export_version = 1

let export_events () =
  let buf = Buffer.create 1024 in
  let line j =
    Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("type", Json.String "meta");
         ("version", Json.Int export_version);
         ("unit", Json.String "us");
         ("pid", Json.Int (Unix.getpid ()));
         ("t0_us", Json.Float !t0_us);
       ]);
  List.iter (fun e -> line (json_of_event e)) (events ());
  let counter_lines =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters [] |> List.sort compare
  in
  List.iter
    (fun (name, v) ->
      line
        (Json.Obj
           [ ("type", Json.String "counter"); ("name", Json.String name); ("value", Json.Int v) ]))
    counter_lines;
  Buffer.contents buf

let import_error fmt =
  Printf.ksprintf (fun m -> raise (Json.Parse_error ("telemetry import: " ^ m))) fmt

let value_of_json : Json.t -> value = function
  | Json.Bool b -> Bool b
  | Json.Int i -> Int i
  | Json.Float f -> Float f
  | Json.String s -> Str s
  | j -> Str (Json.to_string j)

let args_of_json j =
  match Json.member "args" j with
  | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
  | _ -> []

let event_of_json (j : Json.t) : event option =
  let str k = Json.string_member k j in
  let flt k = Option.value ~default:0. (Json.float_member k j) in
  let name () =
    match str "name" with Some n -> n | None -> import_error "event lacks a name"
  in
  match str "type" with
  | Some "span" ->
      Some
        (Span
           {
             name = name ();
             start_us = flt "start_us";
             dur_us = flt "dur_us";
             depth = Option.value ~default:0 (Json.int_member "depth" j);
             args = args_of_json j;
           })
  | Some "gauge" -> Some (Gauge { name = name (); ts_us = flt "ts_us"; gauge_value = flt "value" })
  | Some "instant" -> Some (Instant { name = name (); ts_us = flt "ts_us"; args = args_of_json j })
  | _ -> None

let rebase offset (e : event) : event =
  match e with
  | Span s -> Span { s with start_us = s.start_us +. offset }
  | Gauge g -> Gauge { g with ts_us = g.ts_us +. offset }
  | Instant i -> Instant { i with ts_us = i.ts_us +. offset }

(* counters are absorbed unguarded: an explicit import is intent enough *)
let absorb_counter name v =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + v
  | None -> Hashtbl.replace counters name (ref v)

let import_events ?label (s : string) =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> ()
  | meta :: rest ->
      let m = Json.parse meta in
      if Json.string_member "type" m <> Some "meta" then
        import_error "payload does not start with a meta record";
      (match Json.int_member "version" m with
      | Some v when v = export_version -> ()
      | Some v -> import_error "export version %d, this reader understands %d" v export_version
      | None -> import_error "meta record lacks a version");
      let pid = Option.value ~default:0 (Json.int_member "pid" m) in
      (* the exporter's timestamps are relative to its own t0; shift them
         onto ours so one merged trace shows the true schedule *)
      let offset =
        match Json.float_member "t0_us" m with Some t0 -> t0 -. !t0_us | None -> 0.
      in
      let evs =
        List.filter_map
          (fun l ->
            let j = Json.parse l in
            match Json.string_member "type" j with
            | Some "counter" ->
                (match (Json.string_member "name" j, Json.int_member "value" j) with
                | Some name, Some v -> absorb_counter name v
                | _ -> ());
                None
            | _ -> Option.map (rebase offset) (event_of_json j))
          rest
      in
      let label =
        match label with Some l -> l | None -> Printf.sprintf "pid %d" pid
      in
      imported := { lane_pid = pid; lane_label = label; lane_events = evs } :: !imported

let summary_lines () =
  let counter_lines =
    Hashtbl.fold
      (fun name r acc ->
        Json.Obj
          [ ("type", Json.String "counter"); ("name", Json.String name); ("value", Json.Int !r) ]
        :: acc)
      counters []
  in
  let histogram_lines =
    Hashtbl.fold
      (fun name h acc ->
        Json.Obj
          [
            ("type", Json.String "histogram");
            ("name", Json.String name);
            ("count", Json.Int (Histogram.count h));
            ("min", Json.Float (Histogram.min_value h));
            ("max", Json.Float (Histogram.max_value h));
            ("mean", Json.Float (Histogram.mean h));
            ("p50", Json.Float (Histogram.percentile h 50.));
            ("p90", Json.Float (Histogram.percentile h 90.));
            ("p99", Json.Float (Histogram.percentile h 99.));
          ]
        :: acc)
      histograms []
  in
  (* hashtable order is arbitrary; sort by name for stable output *)
  let by_name a b =
    match (Json.member "name" a, Json.member "name" b) with
    | Some (Json.String x), Some (Json.String y) -> String.compare x y
    | _ -> 0
  in
  List.sort by_name counter_lines @ List.sort by_name histogram_lines

let ndjson_buffer buf =
  let line j =
    Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("type", Json.String "meta");
         ("version", Json.Int 1);
         ("unit", Json.String "us");
         ("pid", Json.Int (Unix.getpid ()));
       ]);
  List.iter (fun e -> line (json_of_event e)) (events ());
  List.iter line (summary_lines ());
  (* imported worker lanes, each announced by a lane record; lane events
     carry the worker's pid so offline consumers can keep them apart *)
  List.iter
    (fun l ->
      line
        (Json.Obj
           [
             ("type", Json.String "lane");
             ("pid", Json.Int l.lane_pid);
             ("label", Json.String l.lane_label);
           ]);
      List.iter
        (fun e ->
          match json_of_event e with
          | Json.Obj kvs -> line (Json.Obj (kvs @ [ ("pid", Json.Int l.lane_pid) ]))
          | j -> line j)
        l.lane_events)
    (lanes ())

let ndjson_string () =
  let buf = Buffer.create 4096 in
  ndjson_buffer buf;
  Buffer.contents buf

let output_ndjson oc = output_string oc (ndjson_string ())

let chrome_trace_json ?pid ?tid () : Json.t =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let tid = match tid with Some t -> t | None -> pid in
  let common ~pid ~tid name ph ts =
    [
      ("name", Json.String name);
      ("cat", Json.String "sic");
      ("ph", Json.String ph);
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
    ]
  in
  let event_json ~pid ~tid (e : event) =
    match e with
    | Span { name; start_us; dur_us; args; _ } ->
        Json.Obj
          (common ~pid ~tid name "X" start_us
          @ [ ("dur", Json.Float dur_us); ("args", json_of_args args) ])
    | Gauge { name; ts_us; gauge_value } ->
        Json.Obj
          (common ~pid ~tid name "C" ts_us
          @ [ ("args", Json.Obj [ ("value", Json.Float gauge_value) ]) ])
    | Instant { name; ts_us; args } ->
        Json.Obj
          (common ~pid ~tid name "i" ts_us @ [ ("s", Json.String "g"); ("args", json_of_args args) ])
  in
  (* "M" metadata names each lane in Perfetto's track list *)
  let thread_name ~pid ~tid label =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String label) ]);
      ]
  in
  let local_lane =
    thread_name ~pid ~tid "main" :: List.map (event_json ~pid ~tid) (events ())
  in
  let imported_lanes =
    List.concat_map
      (fun l ->
        thread_name ~pid:l.lane_pid ~tid:l.lane_pid l.lane_label
        :: List.map (event_json ~pid:l.lane_pid ~tid:l.lane_pid) l.lane_events)
      (lanes ())
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (local_lane @ imported_lanes));
    ]

let chrome_trace_string ?pid ?tid () = Json.to_string (chrome_trace_json ?pid ?tid ())
let output_chrome_trace ?pid ?tid oc = output_string oc (chrome_trace_string ?pid ?tid ())

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  stat_name : string;
  calls : int;
  total_us : float;
  mean_us : float;
  min_us : float;
  max_us : float;
}

let span_stats () =
  let order = ref [] in
  let acc : (string, int * float * float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : event) ->
      match e with
      | Span { name; dur_us; _ } -> (
          match Hashtbl.find_opt acc name with
          | None ->
              order := name :: !order;
              Hashtbl.replace acc name (1, dur_us, dur_us, dur_us)
          | Some (n, total, mn, mx) ->
              Hashtbl.replace acc name
                (n + 1, total +. dur_us, Float.min mn dur_us, Float.max mx dur_us))
      | Gauge _ | Instant _ -> ())
    (events ());
  List.rev_map
    (fun name ->
      let n, total, mn, mx = Hashtbl.find acc name in
      {
        stat_name = name;
        calls = n;
        total_us = total;
        mean_us = total /. float_of_int n;
        min_us = mn;
        max_us = mx;
      })
    !order

(* ------------------------------------------------------------------ *)
(* Pretty-printing NDJSON lines ([sic tail])                            *)
(* ------------------------------------------------------------------ *)

let pp_value (j : Json.t) = match j with Json.String s -> s | j -> Json.to_string j

let pp_args j =
  match Json.member "args" j with
  | Some (Json.Obj ((_ :: _) as kvs)) ->
      " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ pp_value v) kvs)
  | _ -> ""

let pp_ndjson_line (line : string) : string =
  match Json.parse line with
  | exception Json.Parse_error _ -> line
  | j -> (
      let str k = Json.string_member k j in
      let int_ k = Option.value ~default:0 (Json.int_member k j) in
      let flt k = Option.value ~default:0. (Json.float_member k j) in
      let name = Option.value ~default:"?" (str "name") in
      let stamp ts_us = Printf.sprintf "[%10.3f ms]" (ts_us /. 1000.) in
      let pid_suffix =
        match Json.int_member "pid" j with
        | Some p -> Printf.sprintf "  (pid %d)" p
        | None -> ""
      in
      match str "type" with
      | Some "meta" ->
          Printf.sprintf "# sic telemetry (unit %s%s)"
            (Option.value ~default:"?" (str "unit"))
            (match Json.int_member "pid" j with
            | Some p -> Printf.sprintf ", pid %d" p
            | None -> "")
      | Some "span" ->
          Printf.sprintf "%s span     %s%s (%.3f ms)%s%s"
            (stamp (flt "start_us"))
            (String.make (2 * int_ "depth") ' ')
            name
            (flt "dur_us" /. 1000.)
            (pp_args j) pid_suffix
      | Some "gauge" ->
          Printf.sprintf "%s gauge    %s = %g%s" (stamp (flt "ts_us")) name (flt "value")
            pid_suffix
      | Some "instant" ->
          Printf.sprintf "%s instant  %s%s%s" (stamp (flt "ts_us")) name (pp_args j) pid_suffix
      | Some "counter" -> Printf.sprintf "(counter)     %s = %d" name (int_ "value")
      | Some "histogram" ->
          Printf.sprintf "(histogram)   %s n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f" name
            (int_ "count") (flt "mean") (flt "p50") (flt "p90") (flt "p99")
      | Some "hb" ->
          Printf.sprintf "(heartbeat)   job %d: %d done, %d covered" (int_ "job")
            (int_ "cycles") (int_ "covered")
      | Some "lane" ->
          Printf.sprintf "--- lane pid %d: %s ---" (int_ "pid")
            (Option.value ~default:"?" (str "label"))
      | _ -> line)

let render_span_table () =
  let stats = span_stats () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-32s %6s %12s %12s %12s %12s\n" "span" "calls" "total ms" "mean ms"
       "min ms" "max ms");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-32s %6d %12.3f %12.3f %12.3f %12.3f\n" s.stat_name s.calls
           (s.total_us /. 1000.) (s.mean_us /. 1000.) (s.min_us /. 1000.)
           (s.max_us /. 1000.)))
    stats;
  Buffer.contents buf
