(** Structured telemetry for the compiler, the simulators and the fuzzer.

    The paper's §5 is an overhead study — compile-time cost of the coverage
    passes, simulation slowdown per metric, scan-chain cost on FPGA — and a
    coverage-guided flow lives or dies on cheap runtime feedback
    (cycles/sec, execs/sec). This module is the measurement substrate: a
    zero-dependency recorder of {b spans} (wall-clock timers with nesting),
    {b counters}, {b gauges} (timestamped samples), {b instants} (point
    events) and {b histograms}, with two exporters — newline-delimited JSON
    for offline analysis, and the Chrome trace-event format loadable in
    [about://tracing] / Perfetto.

    Telemetry is {b off by default} and every recording entry point is
    guarded by a single flag check, so instrumented hot paths cost nothing
    measurable when disabled. Timestamps come from a pluggable clock
    (default: [Unix.gettimeofday]; see DESIGN.md for the monotonic-clock
    caveat), so tests can substitute a deterministic one. *)

(** {1 Enabling} *)

val on : unit -> bool
(** The hot-path guard: true while recording. *)

val enable : unit -> unit
(** Start recording; the current instant becomes timestamp zero. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events, counters and histograms. *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (a function returning {b seconds}). Used by tests for
    determinism and by the bench harness to plug in a monotonic clock. *)

val now_us : unit -> float
(** Current clock reading in microseconds (absolute, not t0-relative). *)

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds, via a C stub: allocation-free and
    step-immune, precise enough to time single tape instructions. Not
    affected by {!set_clock} — this is the raw hardware clock, used by the
    engine profiler's sampled timing path. *)

(** {1 Events} *)

type value = Bool of bool | Int of int | Float of float | Str of string
(** Attribute values attached to spans and instants. *)

type event =
  | Span of {
      name : string;
      start_us : float;  (** relative to [enable]'s timestamp zero *)
      dur_us : float;
      depth : int;  (** nesting level at the time the span was open *)
      args : (string * value) list;
    }
  | Gauge of { name : string; ts_us : float; gauge_value : float }
  | Instant of { name : string; ts_us : float; args : (string * value) list }

val events : unit -> event list
(** Recorded events in recording order (spans appear when they close). *)

(** {1 Cross-process aggregation}

    A fleet worker records its own telemetry, then ships it back to the
    orchestrator as NDJSON over the result pipe; the parent imports each
    payload as one {b lane} — rebasing the worker's timestamps onto its own
    timestamp zero — so the exporters can render the whole [-j N] schedule
    in a single merged trace, one Perfetto track per worker. *)

type lane = { lane_pid : int; lane_label : string; lane_events : event list }

val lanes : unit -> lane list
(** Imported lanes, in import order. Cleared by {!reset}. *)

val export_events : unit -> string
(** Serialize this process's recorded events (plus counters) as NDJSON: a
    [meta] line carrying the pid and absolute t0 for rebasing, then one line
    per event, then [counter] lines. Inverse of {!import_events}. *)

val import_events : ?label:string -> string -> unit
(** Parse an {!export_events} payload into a new lane (labelled [label],
    default ["pid N"]), rebasing timestamps and absorbing the exporter's
    counters into ours. Raises [Json.Parse_error] on malformed payloads or
    an unknown export version. *)

(** {1 Spans} *)

type span_ctx
(** An open span: carries its start time and nesting depth. *)

val span_open : unit -> span_ctx
(** No-op (and [span_close] on the result is a no-op) when disabled. *)

val span_close : span_ctx -> name:string -> (string * value) list -> unit

val span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a span. If [f] raises, the span is still
    recorded with an [("error", Bool true)] attribute and the exception is
    re-raised. *)

val record_span :
  name:string -> start_us:float -> dur_us:float -> (string * value) list -> unit
(** Record a span measured externally ([start_us] absolute, as from
    {!now_us}); it is rebased to timestamp zero. No-op when disabled. *)

(** {1 Counters, gauges, instants} *)

val count : ?by:int -> string -> unit
(** Bump a cumulative counter (exported once, in the summary). *)

val counter_value : string -> int

val gauge : string -> float -> unit
(** Record one timestamped sample of a named quantity (throughput etc.). *)

val instant : ?args:(string * value) list -> string -> unit

(** {1 Histograms} *)

module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h q] for [q] in [0..100], by nearest-rank over the
      recorded values; [nan] when empty. *)
end

val histogram : string -> Histogram.t
(** Get or create a named histogram; exported in the summary. *)

(** {1 The runtime text sink} *)

val sink : (string -> unit) ref
(** Where all runtime text output goes — simulator [printf] statements
    ({!Sic_sim.Backend.print_sink} is this very ref) and any future
    human-facing chatter. Tests capture or silence everything by swapping
    it; [with_sink] does so with automatic restore. *)

val with_sink : (string -> unit) -> (unit -> 'a) -> 'a

(** {1 Export} *)

val output_ndjson : out_channel -> unit
(** One JSON object per line: a [meta] header, then every event
    ([span]/[gauge]/[instant]), then [counter] and [histogram] summaries,
    then each imported lane ([lane] record followed by its events, which
    carry the worker's [pid]). The schema is documented in README.md
    ("Observability"). *)

val ndjson_string : unit -> string

val output_chrome_trace : ?pid:int -> ?tid:int -> out_channel -> unit
(** A single JSON object in the Chrome trace-event format: spans as ["X"]
    (complete) events, gauges as ["C"] (counter) events, instants as ["i"],
    plus ["M"] thread-name metadata labelling each lane. Local events land
    on [pid]/[tid] (default: the real [Unix.getpid ()]); each imported lane
    lands on its own [lane_pid] track. Loadable in [about://tracing] and
    Perfetto. *)

val chrome_trace_string : ?pid:int -> ?tid:int -> unit -> string

val pp_ndjson_line : string -> string
(** Render one NDJSON telemetry line human-readably ([sic tail]'s
    formatter); lines that don't parse or aren't a known record type pass
    through unchanged. *)

(** {1 Reporting} *)

type span_stat = {
  stat_name : string;
  calls : int;
  total_us : float;
  mean_us : float;
  min_us : float;
  max_us : float;
}

val span_stats : unit -> span_stat list
(** Spans grouped by name, in order of first occurrence. *)

val render_span_table : unit -> string
(** The [sic profile] timing table: one row per distinct span name. *)
