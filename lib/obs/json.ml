(** Minimal JSON printer + recursive-descent parser (see json.mli). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* The shortest decimal representation that round-trips; always contains a
   '.' or exponent so the parser reads it back as a Float, never an Int. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf (v : t) =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          to_buffer buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c "expected %c, found %c" ch x
  | None -> fail c "expected %c, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c "invalid literal"

(* encode a unicode codepoint as UTF-8 *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                c.pos <- c.pos + 4;
                let cp =
                  try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape %s" hex
                in
                add_utf8 buf cp
            | e -> fail c "bad escape \\%c" e));
        go ()
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then fail c "expected a number";
  let is_float = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* integer overflow: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail c "bad number %s" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number c

let parse (src : string) : t =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail c "trailing garbage";
  v

let member key (v : t) =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

(* typed field accessors, for consumers that walk records (the coverage
   database manifest, the profile checkers) without pattern-matching
   boilerplate at every call site *)

let string_member key v = match member key v with Some (String s) -> Some s | _ -> None

let int_member key v = match member key v with Some (Int i) -> Some i | _ -> None

let float_member key v =
  match member key v with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool_member key v = match member key v with Some (Bool b) -> Some b | _ -> None

let rec equal (a : t) (b : t) =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
