(** A minimal JSON value type with a printer and a parser — just enough for
    the telemetry exporters ({!Obs.output_ndjson},
    {!Obs.output_chrome_trace}) and for tests to round-trip what they emit.
    No external dependencies; integers are kept distinct from floats so
    counters survive a round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> t
(** Parse one JSON value (surrounding whitespace allowed). Raises
    {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member key json] looks a field up in an [Obj]; [None] otherwise. *)

val string_member : string -> t -> string option
val int_member : string -> t -> int option

val float_member : string -> t -> float option
(** Also accepts an [Int] field, widening it. *)

val bool_member : string -> t -> bool option

val equal : t -> t -> bool
