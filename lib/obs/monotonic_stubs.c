/* CLOCK_MONOTONIC in nanoseconds as an OCaml immediate int.
 *
 * The profiler samples per-instruction timings, so the clock read must be
 * allocation-free and immune to wall-clock steps; Unix.gettimeofday is
 * neither precise enough (microseconds) nor monotonic. A 63-bit OCaml int
 * holds ~146 years of nanoseconds, so Val_long never wraps in practice.
 */
#include <time.h>

#include <caml/mlvalues.h>

CAMLprim value sic_obs_monotonic_ns(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
