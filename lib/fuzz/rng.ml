(** A small deterministic PRNG (xoshiro256**-style splitmix fallback) so
    fuzzing runs are reproducible from a seed, independent of the global
    [Random] state. *)

type t = { mutable s : int64 }

let create seed = { s = Int64.of_int seed }

(* splitmix64 *)
let next64 (t : t) : int64 =
  t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** The [i]-th child stream of [t]'s current state, without advancing [t].
    Children of distinct indices (and of distinct parent states) are
    decorrelated by a full splitmix64 mixing round, so a campaign can hand
    shard [i] the stream [split master i] and get results independent of
    how many shards run or in which order they are scheduled. *)
let split (t : t) i =
  let child =
    { s = Int64.logxor t.s (Int64.mul (Int64.of_int (i + 1)) 0xBF58476D1CE4E5B9L) }
  in
  child.s <- next64 child;
  child

(** Uniform int in [0, bound). *)
let int (t : t) bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

let bool (t : t) = Int64.logand (next64 t) 1L = 1L

let byte (t : t) = int t 256

(** 30 fresh random bits, for {!Sic_bv.Bv.random}. *)
let bits30 (t : t) () = int t (1 lsl 30)
