(** A small deterministic PRNG (splitmix64) so fuzzing runs are
    reproducible from a seed, independent of the global [Random] state.

    The hot path is {!bits30}: the stimulus closures the lane engine
    calls hundreds of times per cycle pass. The 64-bit state lives in a
    one-element [Int64] bigarray — bigarray loads and stores move raw
    unboxed words — and the whole splitmix64 round is inlined into the
    closure, so a draw is a handful of register ops with no allocation
    and no division. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_state (s : int64) : t =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1 in
  Bigarray.Array1.unsafe_set a 0 s;
  a

let create seed = make_state (Int64.of_int seed)

(* splitmix64 *)
let next64 (t : t) : int64 =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) 0x9E3779B97F4A7C15L in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** The [i]-th child stream of [t]'s current state, without advancing [t].
    Children of distinct indices (and of distinct parent states) are
    decorrelated by a full splitmix64 mixing round, so a campaign can hand
    shard [i] the stream [split master i] and get results independent of
    how many shards run or in which order they are scheduled. *)
let split (t : t) i =
  let child =
    make_state
      (Int64.logxor
         (Bigarray.Array1.unsafe_get t 0)
         (Int64.mul (Int64.of_int (i + 1)) 0xBF58476D1CE4E5B9L))
  in
  Bigarray.Array1.unsafe_set child 0 (next64 child);
  child

(** Uniform int in [0, bound). *)
let int (t : t) bound =
  if bound <= 0 then 0
  else if bound land (bound - 1) = 0 then
    (* power of two: mask instead of the 64-bit division *)
    Int64.to_int (Int64.shift_right_logical (next64 t) 1) land (bound - 1)
  else
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

let bool (t : t) = Int64.logand (next64 t) 1L = 1L

let byte (t : t) = int t 256

(** 30 fresh random bits, for {!Sic_bv.Bv.random}. The splitmix64 round
    is spelled out here rather than calling {!next64} so every
    intermediate stays unboxed in registers. *)
let bits30 (t : t) () =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) 0x9E3779B97F4A7C15L in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 1) land 0x3FFFFFFF
