(** Mutational coverage-directed fuzzing (§5.4).

    An AFL-style loop over an rfuzz-style harness: the input is a flat
    byte string, consumed a fixed number of bytes per clock cycle to drive
    the DUT's input ports; the feedback is *any* coverage metric's counts
    map, bucketed AFL-fashion, so switching feedback metrics is switching
    an instrumentation pass — the paper's point. Mutators are the AFL
    basics: bit flips, byte flips, arithmetic, interesting values, havoc
    and splice. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Obs = Sic_obs.Obs

(* ------------------------------------------------------------------ *)
(* Harness: bytes -> stimulus                                           *)
(* ------------------------------------------------------------------ *)

type harness = {
  circuit : Circuit.t;  (** instrumented, lowered circuit *)
  create : Circuit.t -> Sic_sim.Backend.t;
  inputs : (string * int) list;  (** data inputs: name, width *)
  bytes_per_cycle : int;
  reset_cycles : int;
}

let make_harness ?(create = fun c -> Sic_sim.Compiled.create c) ?(reset_cycles = 1)
    (circuit : Circuit.t) : harness =
  let m = Circuit.main circuit in
  let inputs =
    List.filter_map
      (fun (p : Circuit.port) ->
        match p.Circuit.dir with
        | Circuit.Input
          when p.Circuit.port_name <> "clock" && p.Circuit.port_name <> "reset" ->
            Some (p.Circuit.port_name, Ty.width p.Circuit.port_ty)
        | Circuit.Input | Circuit.Output -> None)
      m.Circuit.ports
  in
  let total_bits = List.fold_left (fun a (_, w) -> a + w) 0 inputs in
  { circuit; create; inputs; bytes_per_cycle = max 1 ((total_bits + 7) / 8); reset_cycles }

(** Execute one input, returning the coverage counts it produced. *)
let execute_input (h : harness) (input : bytes) : Counts.t =
  let b = h.create h.circuit in
  Sic_sim.Backend.reset_sequence ~cycles:h.reset_cycles b;
  let n_cycles = Bytes.length input / h.bytes_per_cycle in
  for cycle = 0 to n_cycles - 1 do
    (* unpack this cycle's bytes into the input ports, LSB first *)
    let base = cycle * h.bytes_per_cycle in
    let bit_at i =
      let byte = Char.code (Bytes.get input (base + (i / 8))) in
      (byte lsr (i mod 8)) land 1 = 1
    in
    let offset = ref 0 in
    List.iter
      (fun (name, w) ->
        let v = ref (Bv.zero w) in
        for i = 0 to w - 1 do
          if bit_at (!offset + i) then
            v := Bv.logor ~width:w !v (Bv.shift_left ~width:w (Bv.one w) i)
        done;
        offset := !offset + w;
        b.Sic_sim.Backend.poke name !v)
      h.inputs;
    b.Sic_sim.Backend.step 1
  done;
  b.Sic_sim.Backend.counts ()

(** [execute_input], timed into the [fuzz.exec_us] histogram when telemetry
    is on. *)
let execute (h : harness) (input : bytes) : Counts.t =
  if not (Obs.on ()) then execute_input h input
  else begin
    let t0 = Obs.now_us () in
    let counts = execute_input h input in
    Obs.Histogram.add (Obs.histogram "fuzz.exec_us") (Obs.now_us () -. t0);
    Obs.count "fuzz.execs";
    counts
  end

(** Re-encode a replay trace (e.g. a BMC witness) as a fuzzer input: the
    byte string whose per-cycle unpacking pokes the same data-input values
    the trace's post-reset frames carry. Values are matched to harness
    inputs {e by name} — a trace's channels are in its own order (BMC
    sorts them alphabetically), not port order. The first
    [h.reset_cycles] frames are dropped because [execute] replays the
    reset sequence itself. *)
let input_of_trace (h : harness) (t : Sic_sim.Replay.trace) : bytes =
  let names = Array.of_list t.Sic_sim.Replay.input_names in
  let idx_of name =
    let found = ref (-1) in
    Array.iteri (fun i n -> if n = name then found := i) names;
    !found
  in
  let total = Array.length t.Sic_sim.Replay.frames in
  let n_cycles = max 0 (total - h.reset_cycles) in
  let out = Bytes.make (n_cycles * h.bytes_per_cycle) '\000' in
  for cycle = 0 to n_cycles - 1 do
    let frame = t.Sic_sim.Replay.frames.(h.reset_cycles + cycle) in
    let base = cycle * h.bytes_per_cycle in
    let set_bit i =
      let byte = base + (i / 8) in
      Bytes.set out byte
        (Char.chr (Char.code (Bytes.get out byte) lor (1 lsl (i mod 8))))
    in
    let offset = ref 0 in
    List.iter
      (fun (name, w) ->
        (match idx_of name with
        | -1 -> ()
        | i ->
            for bit = 0 to w - 1 do
              if Bv.bit frame.(i) bit then set_bit (!offset + bit)
            done);
        offset := !offset + w)
      h.inputs
  done;
  out

(* ------------------------------------------------------------------ *)
(* On-disk corpora                                                      *)
(* ------------------------------------------------------------------ *)

(** Persist a corpus as one [seedNNNN.bin] file per input. The directory
    is created if missing; existing seed files are overwritten in index
    order (stale higher-numbered files from a larger previous corpus are
    removed first, so the directory always mirrors exactly this list). *)
let save_corpus (dir : string) (seeds : bytes list) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".bin" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  List.iteri
    (fun i s ->
      let path = Filename.concat dir (Printf.sprintf "seed%04d.bin" i) in
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc s))
    seeds

(** Load every [*.bin] file of [dir] in name order; [[]] when the
    directory does not exist. *)
let load_corpus (dir : string) : bytes list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
    |> List.sort compare
    |> List.map (fun f ->
           let ic = open_in_bin (Filename.concat dir f) in
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () ->
               let n = in_channel_length ic in
               let b = Bytes.create n in
               really_input ic b 0 n;
               b))

(* ------------------------------------------------------------------ *)
(* AFL-style feedback signature                                         *)
(* ------------------------------------------------------------------ *)

(* AFL bucket: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+ *)
let bucket n =
  if n = 0 then 0
  else if n = 1 then 1
  else if n = 2 then 2
  else if n = 3 then 3
  else if n < 8 then 4
  else if n < 16 then 5
  else if n < 32 then 6
  else if n < 128 then 7
  else 8

(** The feedback signature of a run: cover name -> bucketed count. A run
    is "interesting" when its signature covers a (name, bucket) pair never
    seen before. *)
let signature (counts : Counts.t) : (string * int) list =
  List.filter_map
    (fun (n, c) -> if c = 0 then None else Some (n, bucket c))
    (Counts.to_sorted_list counts)

(* ------------------------------------------------------------------ *)
(* Mutators                                                             *)
(* ------------------------------------------------------------------ *)

let interesting_bytes = [| 0; 1; 2; 4; 8; 16; 32; 64; 127; 128; 255 |]

let mutate (rng : Rng.t) (corpus : bytes array) (src : bytes) : bytes =
  let b = Bytes.copy src in
  let len = Bytes.length b in
  let n_mutations = 1 + Rng.int rng 8 in
  let out = ref b in
  for _ = 1 to n_mutations do
    let b = !out in
    let len = Bytes.length b in
    if len > 0 then
      match Rng.int rng 7 with
      | 0 ->
          (* single bit flip *)
          let i = Rng.int rng (len * 8) in
          let c = Char.code (Bytes.get b (i / 8)) in
          Bytes.set b (i / 8) (Char.chr (c lxor (1 lsl (i mod 8))))
      | 1 ->
          (* random byte *)
          Bytes.set b (Rng.int rng len) (Char.chr (Rng.byte rng))
      | 2 ->
          (* interesting value *)
          Bytes.set b (Rng.int rng len)
            (Char.chr interesting_bytes.(Rng.int rng (Array.length interesting_bytes)))
      | 3 ->
          (* arithmetic +/- small delta *)
          let i = Rng.int rng len in
          let d = 1 + Rng.int rng 16 in
          let d = if Rng.bool rng then d else -d in
          Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + d) land 0xff))
      | 4 ->
          (* duplicate a block (growth) *)
          let src_off = Rng.int rng len in
          let n = min (1 + Rng.int rng 16) (len - src_off) in
          out := Bytes.cat b (Bytes.sub b src_off n)
      | 5 ->
          (* truncate (shrink), keeping at least one byte *)
          let n = max 1 (len - (1 + Rng.int rng 16)) in
          out := Bytes.sub b 0 n
      | 6 ->
          (* splice with another corpus entry *)
          if Array.length corpus > 0 then begin
            let other = corpus.(Rng.int rng (Array.length corpus)) in
            if Bytes.length other > 0 then begin
              let cut = Rng.int rng len in
              let cut2 = Rng.int rng (Bytes.length other) in
              out :=
                Bytes.cat (Bytes.sub b 0 cut)
                  (Bytes.sub other cut2 (Bytes.length other - cut2))
            end
          end
      | _ -> ()
  done;
  if Bytes.length !out = 0 then Bytes.make len '\000' else !out

(* ------------------------------------------------------------------ *)
(* Corpus trimming (afl-tmin style)                                     *)
(* ------------------------------------------------------------------ *)

(* does [smaller]'s signature still include everything in [target]? *)
let covers_signature target counts =
  let sig_ = signature counts in
  List.for_all (fun pair -> List.mem pair sig_) target

(** Shrink a testcase while preserving its coverage signature: repeatedly
    drop trailing cycles, then whole chunks from the middle, re-executing
    to confirm nothing is lost. Deterministic and quadratic at worst —
    intended for corpus minimization after a campaign, like afl-tmin. *)
let trim (h : harness) (input : bytes) : bytes =
  let target = signature (execute h input) in
  let keeps b = covers_signature target (execute h b) in
  (* phase 1: binary-search the shortest prefix (in whole cycles) *)
  let cycle_len = h.bytes_per_cycle in
  let cycles b = Bytes.length b / cycle_len in
  let prefix b n = Bytes.sub b 0 (n * cycle_len) in
  let rec shortest_prefix lo hi =
    (* invariant: prefix hi works, prefix lo-1... lo may not *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if keeps (prefix input mid) then shortest_prefix lo mid
      else shortest_prefix (mid + 1) hi
  in
  let n = shortest_prefix 1 (max 1 (cycles input)) in
  let best = ref (prefix input n) in
  (* phase 2: try deleting one cycle at a time from the middle *)
  let i = ref (cycles !best - 1) in
  while !i >= 0 do
    let b = !best in
    let len = Bytes.length b in
    if cycles b > 1 then begin
      let candidate =
        Bytes.cat (Bytes.sub b 0 (!i * cycle_len))
          (Bytes.sub b ((!i + 1) * cycle_len) (len - ((!i + 1) * cycle_len)))
      in
      if keeps candidate then best := candidate
    end;
    decr i
  done;
  !best

(* ------------------------------------------------------------------ *)
(* The fuzzing loop                                                     *)
(* ------------------------------------------------------------------ *)

type progress = {
  execs : int;
  corpus_size : int;
  seen_pairs : int;  (** distinct (cover, bucket) pairs discovered *)
  cumulative : Counts.t;  (** merged counts over all executions so far *)
}

type result = {
  final : progress;
  history : (int * Counts.t) list;  (** snapshots: execs -> merged counts *)
  timeline : Sic_coverage.Timeline.t;
      (** the same snapshots as a convergence curve (execs -> points hit) *)
  corpus : bytes list;
      (** the final corpus, seeds first then discoveries in find order —
          ready for {!save_corpus} *)
}

(** Run the fuzzer for [execs] executions, seeded deterministically.
    [snapshot_every] controls the coverage-over-time history used by the
    Figure 11 plot. [feedback] selects which cover points feed the AFL
    signature — instrument the circuit with several metrics and filter by
    name prefix to switch feedback metrics, or pass [(fun _ -> false)] for
    feedback-free random fuzzing (the paper's baseline). *)
let run ?(seed = 0) ?(execs = 200) ?(snapshot_every = 10) ?(max_cycles = 16)
    ?(seed_cycles = 4) ?(corpus = []) ?(feedback = fun (_ : string) -> true) ?on_snapshot
    (h : harness) : result =
  let rng = Rng.create seed in
  let seen : (string * int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* the all-zeroes seed first, then any caller-supplied seeds (witness
     traces, a loaded on-disk corpus); each is executed below so its
     coverage lands in [cumulative] even if mutation never revisits it *)
  let corpus = ref (Bytes.make (h.bytes_per_cycle * seed_cycles) '\000' :: corpus) in
  let cumulative = ref (Counts.create ()) in
  let history = ref [] in
  let n_execs = ref 0 in
  let span = Obs.span_open () in
  let t_start = if Obs.on () then Obs.now_us () else 0. in
  (* the runtime feedback loop of any coverage-guided flow: execs/sec,
     corpus growth, discovery events *)
  let emit_progress () =
    if Obs.on () then begin
      let dt_s = (Obs.now_us () -. t_start) /. 1e6 in
      if dt_s > 0. then Obs.gauge "fuzz.execs_per_sec" (float_of_int !n_execs /. dt_s);
      Obs.gauge "fuzz.corpus_size" (float_of_int (List.length !corpus));
      Obs.gauge "fuzz.seen_pairs" (float_of_int (Hashtbl.length seen))
    end
  in
  let interesting counts =
    let fresh = ref false in
    List.iter
      (fun ((name, _) as pair) ->
        if feedback name && not (Hashtbl.mem seen pair) then begin
          Hashtbl.replace seen pair ();
          fresh := true
        end)
      (signature counts);
    !fresh
  in
  (* seed the corpus through the feedback filter *)
  List.iter
    (fun input ->
      incr n_execs;
      let counts = execute h input in
      cumulative := Counts.merge [ !cumulative; counts ];
      ignore (interesting counts))
    !corpus;
  while !n_execs < execs do
    let arr = Array.of_list !corpus in
    let parent = arr.(Rng.int rng (Array.length arr)) in
    let child = mutate rng arr parent in
    (* bound the testcase length *)
    let child =
      if Bytes.length child > h.bytes_per_cycle * max_cycles then
        Bytes.sub child 0 (h.bytes_per_cycle * max_cycles)
      else child
    in
    incr n_execs;
    let counts = execute h child in
    cumulative := Counts.merge [ !cumulative; counts ];
    if interesting counts then begin
      corpus := child :: !corpus;
      if Obs.on () then
        Obs.instant "fuzz.new_coverage"
          ~args:
            [
              ("execs", Obs.Int !n_execs);
              ("corpus_size", Obs.Int (List.length !corpus));
              ("seen_pairs", Obs.Int (Hashtbl.length seen));
            ]
    end;
    if !n_execs mod snapshot_every = 0 then begin
      history := (!n_execs, !cumulative) :: !history;
      (match on_snapshot with
      | Some f -> f ~execs:!n_execs ~covered:(Counts.covered_points !cumulative)
      | None -> ());
      emit_progress ()
    end
  done;
  emit_progress ();
  let final =
    {
      execs = !n_execs;
      corpus_size = List.length !corpus;
      seen_pairs = Hashtbl.length seen;
      cumulative = !cumulative;
    }
  in
  Obs.span_close span ~name:"fuzz.run"
    [
      ("execs", Obs.Int final.execs);
      ("corpus_size", Obs.Int final.corpus_size);
      ("seen_pairs", Obs.Int final.seen_pairs);
    ];
  let module Timeline = Sic_coverage.Timeline in
  let tlb = Timeline.builder () in
  List.iter
    (fun (execs, counts) ->
      Timeline.record tlb ~at:execs ~covered:(Counts.covered_points counts))
    (List.rev !history);
  Timeline.record tlb ~at:final.execs ~covered:(Counts.covered_points final.cumulative);
  let timeline = Timeline.build ~total:(Counts.total_points final.cumulative) tlb in
  { final; history = List.rev !history; timeline; corpus = List.rev !corpus }
