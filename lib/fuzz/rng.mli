(** A small deterministic PRNG (splitmix64) so fuzzing runs and random
    stimulus are reproducible from a seed, independent of the global
    [Random] state. *)

type t

val create : int -> t
val next64 : t -> int64

val split : t -> int -> t
(** [split t i] is the [i]-th child stream of [t]'s current state; [t] is
    not advanced. Deterministic per [(state, i)] and decorrelated across
    indices — the per-shard seeding primitive of {!Sic_fleet}. *)

val int : t -> int -> int
(** Uniform in [0, bound); 0 when [bound <= 0]. *)

val bool : t -> bool
val byte : t -> int
val bits30 : t -> unit -> int
(** 30 fresh random bits per call, for {!Sic_bv.Bv.random}. *)
