(** Mutational coverage-directed fuzzing (§5.4): an AFL-style loop over an
    rfuzz-style harness. Inputs are flat byte strings consumed a fixed
    number of bytes per clock cycle; feedback is any coverage metric's
    counts map, bucketed AFL-fashion — switching metrics is switching an
    instrumentation pass (or just a name filter). Fully deterministic
    from the seed. *)

open Sic_ir
module Counts = Sic_coverage.Counts

type harness = {
  circuit : Circuit.t;  (** instrumented, lowered *)
  create : Circuit.t -> Sic_sim.Backend.t;
  inputs : (string * int) list;  (** data inputs: name, width *)
  bytes_per_cycle : int;
  reset_cycles : int;
}

val make_harness :
  ?create:(Circuit.t -> Sic_sim.Backend.t) ->
  ?reset_cycles:int ->
  Circuit.t ->
  harness

val execute : harness -> bytes -> Counts.t
(** Run one input from reset; returns its coverage counts. *)

val input_of_trace : harness -> Sic_sim.Replay.trace -> bytes
(** Re-encode a replay trace (e.g. a BMC witness) as the fuzzer input
    whose per-cycle unpacking pokes the same data-input values. Channels
    are matched by name (a witness's channels are alphabetical, not port
    order); the first [reset_cycles] frames are dropped because
    {!execute} replays the reset sequence itself. *)

val save_corpus : string -> bytes list -> unit
(** Persist a corpus as one [seedNNNN.bin] per input, creating the
    directory if needed; the directory ends up mirroring exactly the
    given list. *)

val load_corpus : string -> bytes list
(** Every [*.bin] of the directory in name order; [[]] if it doesn't
    exist. *)

val bucket : int -> int
(** AFL count bucketing (1, 2, 3, 4-7, 8-15, ...). *)

val signature : Counts.t -> (string * int) list
(** The (cover, bucket) pairs of a run; a run is interesting when it
    contributes an unseen pair. *)

val mutate : Rng.t -> bytes array -> bytes -> bytes
(** One havoc round: bit flips, byte ops, arithmetic, interesting
    values, block duplication, truncation, splicing. Never returns an
    empty testcase. *)

val trim : harness -> bytes -> bytes
(** Shrink a testcase while preserving its coverage signature
    (afl-tmin-style corpus minimization): shortest working prefix by
    binary search, then single-cycle deletions. *)

type progress = {
  execs : int;
  corpus_size : int;
  seen_pairs : int;
  cumulative : Counts.t;  (** merged counts over all executions *)
}

type result = {
  final : progress;
  history : (int * Counts.t) list;  (** snapshots for coverage-over-time *)
  timeline : Sic_coverage.Timeline.t;
      (** the same snapshots as a convergence curve (execs -> points hit),
          ready to persist in the coverage database *)
  corpus : bytes list;  (** the final corpus, ready for {!save_corpus} *)
}

val run :
  ?seed:int ->
  ?execs:int ->
  ?snapshot_every:int ->
  ?max_cycles:int ->
  ?seed_cycles:int ->
  ?corpus:bytes list ->
  ?feedback:(string -> bool) ->
  ?on_snapshot:(execs:int -> covered:int -> unit) ->
  harness ->
  result
(** [corpus] supplies extra initial seeds beyond the all-zeroes default —
    witness-derived inputs or a {!load_corpus} result; each is executed
    up front so its coverage counts even if mutation never revisits it.
    [feedback] filters which cover names feed the signature; pass
    [(fun _ -> false)] for feedback-free random fuzzing. [on_snapshot]
    fires at every [snapshot_every] boundary with the cumulative points
    covered — the fleet's heartbeat hook. *)
